//! The hardware-assisted NDS system (Fig. 7c, §5.3).
//!
//! The STL runs inside the SSD controller (Fig. 8): the host issues a single
//! extended NVMe command per multi-dimensional request, the controller's
//! space translator and channel handlers fetch building blocks at full
//! internal bandwidth, the data assembler constructs the application object
//! in device DRAM, and only the finished object crosses the interconnect —
//! in saturating transfer chunks. The host never restructures anything.
//!
//! Costs unique to this architecture: the controller's per-request STL
//! latency (§7.3 measures 17 µs worst-case) and the ARM-class cores'
//! slower data handling, which shows up as the ~17% write penalty of §7.1.

use std::collections::BTreeMap;

use nds_core::{ElementType, Shape, SpaceId, Stl};
use nds_host::CpuModel;
use nds_interconnect::{wire, Link, NvmeCommand, QueuePair};
use nds_sim::{
    record_command_partition, CommandTracer, ComponentId, Event, EventKind, Observability,
    Resource, RunReport, SimDuration, SimTime, Stats, TraceContext, TraceExport, TraceStage,
};

use crate::config::{ControllerConfig, SystemConfig};
use crate::error::SystemError;
use crate::flash_backend::FlashBackend;
use crate::frontend::{DatasetId, ReadMetrics, ReadOutcome, StorageFrontEnd, WriteOutcome};

/// NDS with the STL embedded in the storage controller.
#[derive(Debug)]
pub struct HardwareNds {
    stl: Stl<FlashBackend>,
    link: Link,
    cpu: CpuModel,
    controller: ControllerConfig,
    transfer_chunk: u64,
    datasets: BTreeMap<DatasetId, SpaceId>,
    queue: QueuePair,
    next_id: u64,
    stats: Stats,
    obs: Observability,
    tracer: Option<CommandTracer>,
}

/// Journal identity of the front-end's request-level span events.
const SYSTEM_COMPONENT: ComponentId = ComponentId::singleton("system");

/// Journal identity of the NVMe submission/completion queue pair.
const QUEUE_COMPONENT: ComponentId = ComponentId::singleton("nvme.queue");

impl HardwareNds {
    /// Fixed cost of issuing one DMA descriptor in the on-device assembler.
    const DMA_DESCRIPTOR_COST: SimDuration = SimDuration::from_nanos(100);

    /// Builds a hardware-NDS system from a configuration.
    pub fn new(config: SystemConfig) -> Self {
        let mut backend = FlashBackend::new(config.flash.clone());
        let mut link = Link::new(config.link);
        if let Some(faults) = config.faults {
            backend.install_faults(faults);
            link.install_faults(faults);
        }
        backend.device_mut().configure_observability(&config.obs);
        link.configure_observability(&config.obs);
        let mut obs = Observability::disabled();
        obs.configure(&config.obs);
        HardwareNds {
            stl: Stl::new(backend, config.stl),
            link,
            cpu: config.cpu,
            controller: config.controller,
            transfer_chunk: config.nds_transfer_chunk,
            datasets: BTreeMap::new(),
            queue: QueuePair::new(64),
            next_id: 1,
            stats: Stats::new(),
            obs,
            tracer: config.obs.tracing.then(CommandTracer::new),
        }
    }

    /// Starts a traced command: allocates its trace context and tags the
    /// system, link, and device journals with it — before the NVMe queue
    /// events, so the extended command's submission is part of the trace.
    /// `None` unless tracing is configured.
    fn begin_command(&mut self) -> Option<TraceContext> {
        let ctx = self.tracer.as_mut().map(|t| t.begin())?;
        self.obs.set_trace(ctx);
        self.stl.backend_mut().device_mut().begin_trace(ctx);
        self.link.begin_trace(ctx);
        Some(ctx)
    }

    /// Finishes a traced command: records its exact stage partition,
    /// clears the trace tags, and advances the trace clock by `latency`.
    fn finish_command(
        &mut self,
        ctx: TraceContext,
        op: &'static str,
        latency: SimDuration,
        stages: &[(TraceStage, SimDuration)],
    ) {
        record_command_partition(
            self.obs.journal_mut(),
            SYSTEM_COMPONENT,
            ctx,
            op,
            latency,
            stages,
        );
        self.obs.clear_trace();
        self.stl.backend_mut().device_mut().end_trace();
        self.link.end_trace();
        if let Some(t) = self.tracer.as_mut() {
            t.finish(latency);
        }
    }

    /// Marshals `cmd` through the real §5.3.1 wire codec and the submission
    /// queue, exactly as the host driver would: encode, submit, device pops
    /// and decodes. Returns the decoded command the controller executes.
    fn submit_command(&mut self, cmd: NvmeCommand) -> Result<NvmeCommand, SystemError> {
        let wired = wire::encode(&cmd)?;
        self.stats.add("nvme.wire_bytes", wired.wire_bytes());
        let wire_bytes = wired.wire_bytes();
        // The queue drains synchronously, so issue and completion share the
        // per-operation epoch anchor rather than carrying modeled time.
        self.obs.event(SimTime::ZERO, QUEUE_COMPONENT, || {
            EventKind::CommandIssued { bytes: wire_bytes }
        });
        self.queue.submit(cmd)?;
        if self.obs.metrics().is_enabled() {
            let depth = self.queue.in_flight() as u64;
            self.obs
                .metric_sample(SimTime::ZERO, "nvme.queue_depth", depth);
        }
        let popped = self
            .queue
            .device_pop()
            .ok_or(SystemError::Protocol("submitted command missing on pop"))?;
        let decoded = wire::decode(&wired)?;
        debug_assert_eq!(decoded, popped, "wire format must be faithful");
        self.queue.complete(popped);
        let _ = self.queue.reap();
        self.obs.event(SimTime::ZERO, QUEUE_COMPONENT, || {
            EventKind::CommandCompleted { bytes: wire_bytes }
        });
        Ok(decoded)
    }

    /// The controller-resident STL (exposed for overhead experiments).
    pub fn stl(&self) -> &Stl<FlashBackend> {
        &self.stl
    }

    fn space_of(&self, id: DatasetId) -> Result<SpaceId, SystemError> {
        self.datasets
            .get(&id)
            .copied()
            .ok_or(SystemError::UnknownDataset(id))
    }

    /// The controller pipeline's fixed per-request latency for `space`
    /// (Fig. 8; one B-tree traversal per request, §7.3).
    fn stl_latency(&self, space: SpaceId) -> SimDuration {
        let levels = self
            .stl
            .space(space)
            .map(|s| s.tree().levels())
            .unwrap_or(2);
        self.controller.pipeline.request_latency(levels)
    }

    /// Device-side assembler time: DMA descriptors per segment plus the
    /// assembler's internal bandwidth over the payload.
    fn assemble_time(&self, segments: u64, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        Self::DMA_DESCRIPTOR_COST * segments
            + self.controller.assemble_bandwidth.time_for_bytes(bytes)
    }

    /// Controller decomposition time on writes: the ARM cores scatter the
    /// incoming object into page images.
    fn decompose_time(&self, segments: u64, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.controller.scatter_chunk_overhead * segments
            + self.controller.assemble_bandwidth.time_for_bytes(bytes)
    }

    /// Link time for shipping `bytes` in saturating chunks.
    fn chunked_link_time(&mut self, bytes: u64) -> Result<SimDuration, SystemError> {
        if bytes == 0 {
            return Ok(SimDuration::ZERO);
        }
        let mut remaining = bytes;
        let mut end = SimTime::ZERO;
        while remaining > 0 {
            let take = remaining.min(self.transfer_chunk);
            end = self.link.try_transfer(take, SimTime::ZERO)?;
            remaining -= take;
        }
        Ok(end.saturating_since(SimTime::ZERO))
    }
}

impl StorageFrontEnd for HardwareNds {
    fn name(&self) -> &'static str {
        "hardware-nds"
    }

    fn create_dataset(
        &mut self,
        shape: Shape,
        element: ElementType,
    ) -> Result<DatasetId, SystemError> {
        let space = self.stl.create_space(shape, element)?;
        let id = DatasetId(self.next_id);
        self.next_id += 1;
        self.datasets.insert(id, space);
        Ok(id)
    }

    fn write(
        &mut self,
        id: DatasetId,
        view: &Shape,
        coord: &[u64],
        sub_dims: &[u64],
        data: &[u8],
    ) -> Result<WriteOutcome, SystemError> {
        let space = self.space_of(id)?;
        let ctx = self.begin_command();
        // The request travels as one extended NVMe write (§5.3.1); validate
        // it against the interface limits, then marshal it through the real
        // wire codec and submission queue.
        let cmd = NvmeCommand::NdsWrite {
            space: nds_interconnect::SpaceId(space.0),
            coord: coord.to_vec(),
            sub_dims: sub_dims.to_vec(),
        };
        cmd.validate()?;
        let decoded = self.submit_command(cmd)?;
        let (coord, sub_dims) = match &decoded {
            NvmeCommand::NdsWrite {
                coord, sub_dims, ..
            } => (coord.clone(), sub_dims.clone()),
            _ => return Err(SystemError::Protocol("decoded write changed command kind")),
        };
        let report = self.stl.write(space, view, &coord, &sub_dims, data)?;
        self.stl.backend_mut().device_mut().reset_timing();
        self.link.reset_timing();

        // One extended NVMe command; the object streams in over the link,
        // the controller decomposes it, the channel handlers program pages.
        let submit = self.cpu.submit_time(1);
        let link = self.chunked_link_time(report.access.bytes)?;
        let decompose = self.decompose_time(report.access.segments, report.access.bytes);
        let mut program_end = SimTime::ZERO;
        for block in &report.access.blocks {
            let backend = self.stl.backend_mut();
            program_end =
                program_end.max(backend.try_schedule_unit_programs(&block.units, SimTime::ZERO)?);
        }
        let stl = self.stl_latency(space);
        let program_tail = program_end.saturating_since(SimTime::ZERO);
        let latency = stl + submit + link + decompose + program_tail;

        self.stats.add("system.write_commands", 1);
        self.stats.add("system.write_bytes", report.access.bytes);
        self.obs.metric_add(SimTime::ZERO, "host.ops", 1);
        self.obs
            .metric_add(SimTime::ZERO, "host.bytes", report.access.bytes);
        self.obs
            .journal_mut()
            .begin_span(SimTime::ZERO, SYSTEM_COMPONENT, "write");
        self.obs
            .journal_mut()
            .end_span(SimTime::ZERO + latency, SYSTEM_COMPONENT, "write");
        self.obs.latency("write.latency", latency);
        if let Some(ctx) = ctx {
            // The write is a strict chronological chain: controller STL
            // lookup, NVMe submission, the object streaming over the link,
            // controller decomposition, then the channel programs.
            let stages = [
                (TraceStage::Other, stl),
                (TraceStage::Queue, submit),
                (TraceStage::Link, link),
                (TraceStage::Restructure, decompose),
                (TraceStage::Flash, program_tail),
            ];
            self.finish_command(ctx, "write", latency, &stages);
        }
        // End the timing epoch by the operation's full span so per-lane
        // timelines stay on the run-long clock.
        self.stl
            .backend_mut()
            .device_mut()
            .fold_timing_epoch(latency);
        self.link.fold_timing_epoch(latency);
        self.obs.fold_metrics_epoch(latency);
        Ok(WriteOutcome {
            latency,
            commands: 1,
            bytes: report.access.bytes,
        })
    }

    fn read(
        &mut self,
        id: DatasetId,
        view: &Shape,
        coord: &[u64],
        sub_dims: &[u64],
    ) -> Result<ReadOutcome, SystemError> {
        let mut data = Vec::new();
        let metrics = self.read_into(id, view, coord, sub_dims, &mut data)?;
        Ok(metrics.into_outcome(data))
    }

    fn read_into(
        &mut self,
        id: DatasetId,
        view: &Shape,
        coord: &[u64],
        sub_dims: &[u64],
        buf: &mut Vec<u8>,
    ) -> Result<ReadMetrics, SystemError> {
        let space = self.space_of(id)?;
        let ctx = self.begin_command();
        // The request travels as one extended NVMe read (§5.3.1), marshalled
        // through the real wire codec and submission queue.
        let cmd = NvmeCommand::NdsRead {
            space: nds_interconnect::SpaceId(space.0),
            coord: coord.to_vec(),
            sub_dims: sub_dims.to_vec(),
        };
        cmd.validate()?;
        let decoded = self.submit_command(cmd)?;
        let (coord, sub_dims) = match &decoded {
            NvmeCommand::NdsRead {
                coord, sub_dims, ..
            } => (coord.clone(), sub_dims.clone()),
            _ => return Err(SystemError::Protocol("decoded read changed command kind")),
        };
        let report = self.stl.read_into(space, view, &coord, &sub_dims, buf)?;
        self.stl.backend_mut().device_mut().reset_timing();
        self.link.reset_timing();

        // Device: all covered blocks stream concurrently at internal
        // bandwidth; the assembler and the link pipeline behind them.
        let mut assembler = Resource::new("nds.assembler");
        let mut first_block = SimDuration::ZERO;
        let mut dev_end = SimTime::ZERO;
        let blocks = report.blocks.len().max(1) as u64;
        let seg_per_block = report.segments.div_ceil(blocks);
        let bytes_per_block = report.bytes.div_ceil(blocks);
        let mut asm_end = SimTime::ZERO;
        for (i, block) in report.blocks.iter().enumerate() {
            if block.units.is_empty() {
                continue;
            }
            let backend = self.stl.backend_mut();
            let end = backend.try_schedule_unit_reads(&block.units, SimTime::ZERO)?;
            if i == 0 {
                first_block = end.saturating_since(SimTime::ZERO);
            }
            dev_end = dev_end.max(end);
            asm_end = asm_end
                .max(assembler.acquire(end, self.assemble_time(seg_per_block, bytes_per_block)));
        }
        let link = self.chunked_link_time(report.bytes)?;
        let submit = self.cpu.submit_time(1);
        let stl = self.stl_latency(space);
        let asm_dur = asm_end.saturating_since(SimTime::ZERO);
        let region = asm_dur.max(link + first_block);
        let io_latency = stl + submit + region;
        // Steady-state pacing: device lanes, the in-device assembler, and
        // the wire drain their aggregate work concurrently.
        let io_occupancy = self
            .stl
            .backend()
            .device()
            .throughput_occupancy()
            .max(assembler.busy_time())
            .max(self.link.busy_time());

        self.stats.add("system.read_commands", 1);
        self.stats.add("system.read_bytes", report.bytes);
        self.obs.metric_add(SimTime::ZERO, "host.ops", 1);
        self.obs
            .metric_add(SimTime::ZERO, "host.bytes", report.bytes);
        self.obs
            .journal_mut()
            .begin_span(SimTime::ZERO, SYSTEM_COMPONENT, "read");
        self.obs
            .journal_mut()
            .end_span(SimTime::ZERO + io_latency, SYSTEM_COMPONENT, "read");
        self.obs.latency("read.io_latency", io_latency);
        self.obs.latency("read.latency", io_latency);
        if let Some(ctx) = ctx {
            // After the fixed STL + submission prefix, the critical path of
            // the remaining region is either the in-device assembler (flash
            // streaming, then assembly) or the wire (the first block, then
            // the chunked transfer draining behind it).
            let mut stages = Vec::with_capacity(4);
            stages.push((TraceStage::Other, stl));
            stages.push((TraceStage::Queue, submit));
            if asm_dur >= link + first_block {
                let flash = dev_end.saturating_since(SimTime::ZERO).min(region);
                stages.push((TraceStage::Flash, flash));
                stages.push((TraceStage::Restructure, region - flash));
            } else {
                let flash = first_block.min(region);
                stages.push((TraceStage::Flash, flash));
                stages.push((TraceStage::Link, region - flash));
            }
            self.finish_command(ctx, "read", io_latency, &stages);
        }
        self.stl
            .backend_mut()
            .device_mut()
            .fold_timing_epoch(io_latency);
        self.link.fold_timing_epoch(io_latency);
        self.obs.fold_metrics_epoch(io_latency);
        Ok(ReadMetrics {
            io_latency,
            io_occupancy,
            restructure: SimDuration::ZERO,
            commands: 1,
            bytes: report.bytes,
        })
    }

    fn delete_dataset(&mut self, id: DatasetId) -> Result<(), SystemError> {
        let space = self
            .datasets
            .remove(&id)
            .ok_or(SystemError::UnknownDataset(id))?;
        self.stl.delete_space(space)?;
        self.stats.add("system.delete_commands", 1);
        Ok(())
    }

    fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.merge(self.link.stats());
        s.merge(self.stl.backend().stats());
        s.merge(self.stl.backend().device().stats());
        s.add("stl.plan_cache.hits", self.stl.plan_cache().hits());
        s.add("stl.plan_cache.misses", self.stl.plan_cache().misses());
        s
    }

    fn run_report(&self) -> RunReport {
        let mut report = self.stats().to_report();
        report.set_meta("arch", self.name());
        report.absorb(&self.obs);
        report.absorb(self.link.observability());
        report.absorb(self.stl.backend().device().observability());
        if let Some(t) = self.link.wire_timeline() {
            report.add_timeline("link", t);
        }
        for (name, t) in self.stl.backend().device().timeline_snapshots() {
            report.add_timeline(name, t);
        }
        report
    }

    fn trace_export(&self) -> Option<TraceExport> {
        let tracer = self.tracer.as_ref()?;
        let mut events: Vec<Event> = self.obs.journal().events().copied().collect();
        events.extend(self.link.observability().journal().events().copied());
        events.extend(
            self.stl
                .backend()
                .device()
                .observability()
                .journal()
                .events()
                .copied(),
        );
        events.retain(|e| e.trace != 0);
        events.sort_by_key(|e| e.at);
        let (channels, banks) = self.stl.backend().device().lane_busy_totals();
        Some(TraceExport {
            events,
            channels,
            banks,
            makespan: tracer.makespan(),
            tenants: Vec::new(),
        })
    }

    fn trace_cursor(&self) -> u64 {
        self.tracer.as_ref().map_or(0, CommandTracer::commands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::software::SoftwareNds;

    fn system() -> HardwareNds {
        HardwareNds::new(SystemConfig::small_test())
    }

    #[test]
    fn round_trip_with_one_command() {
        let mut sys = system();
        let shape = Shape::new([64, 64]);
        let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
        let data: Vec<u8> = (0..64 * 64 * 4).map(|i| (i % 251) as u8).collect();
        let w = sys.write(id, &shape, &[0, 0], &[64, 64], &data).unwrap();
        assert_eq!(w.commands, 1, "one extended NVMe command per write");
        let r = sys.read(id, &shape, &[1, 0], &[32, 64]).unwrap();
        assert_eq!(r.commands, 1, "one extended NVMe command per read");
        assert_eq!(r.restructure, SimDuration::ZERO);
        for (i, &b) in r.data.iter().enumerate() {
            let x = (i / 4) % 32 + 32;
            let y = (i / 4) / 32;
            let src = (x + 64 * y) * 4 + i % 4;
            assert_eq!(b, (src % 251) as u8);
        }
    }

    #[test]
    fn hardware_beats_software_on_tile_reads() {
        let config = SystemConfig::small_test();
        let shape = Shape::new([128, 128]);
        let data = vec![1u8; 128 * 128 * 4];

        let mut hw = HardwareNds::new(config.clone());
        let id = hw.create_dataset(shape.clone(), ElementType::F32).unwrap();
        hw.write(id, &shape, &[0, 0], &[128, 128], &data).unwrap();
        let hw_read = hw.read(id, &shape, &[1, 1], &[64, 64]).unwrap();

        let mut sw = SoftwareNds::new(config);
        let id = sw.create_dataset(shape.clone(), ElementType::F32).unwrap();
        sw.write(id, &shape, &[0, 0], &[128, 128], &data).unwrap();
        let sw_read = sw.read(id, &shape, &[1, 1], &[64, 64]).unwrap();

        assert!(
            hw_read.latency() <= sw_read.latency(),
            "hardware {} should not trail software {}",
            hw_read.latency(),
            sw_read.latency()
        );
    }

    #[test]
    fn write_latency_exceeds_read_latency() {
        // NAND programs are far slower than reads; sanity-check the model.
        let mut sys = system();
        let shape = Shape::new([64, 64]);
        let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
        let data = vec![1u8; 64 * 64 * 4];
        let w = sys.write(id, &shape, &[0, 0], &[64, 64], &data).unwrap();
        let r = sys.read(id, &shape, &[0, 0], &[64, 64]).unwrap();
        assert!(w.latency > r.latency());
    }

    #[test]
    fn stl_latency_floor() {
        // Even a tiny read pays the controller's per-request STL latency.
        let mut sys = system();
        let shape = Shape::new([64, 64]);
        let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
        let data = vec![1u8; 64 * 64 * 4];
        sys.write(id, &shape, &[0, 0], &[64, 64], &data).unwrap();
        let r = sys.read(id, &shape, &[0, 0], &[1, 1]).unwrap();
        assert!(r.io_latency >= sys.controller.pipeline.request_latency(2));
    }

    #[test]
    fn empty_dataset_read_is_cheap_but_valid() {
        let mut sys = system();
        let shape = Shape::new([32, 32]);
        let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
        let r = sys.read(id, &shape, &[0, 0], &[32, 32]).unwrap();
        assert!(r.data.iter().all(|&b| b == 0));
        assert_eq!(r.bytes, 32 * 32 * 4);
    }
}
