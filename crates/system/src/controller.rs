//! The NDS controller pipeline (Fig. 8) and its software-NDS counterpart.
//!
//! The paper's NDS-compliant controller runs five pipeline elements on eight
//! ARM A72 cores — (1) a PCIe/NVMe command handler, (2) the space
//! translator/manager, (3) the space allocator with garbage collector,
//! (4) the data assembler, and (5) four channel handlers — connected by
//! dedicated message-queue pairs "to avoid locking and race conditions"
//! (§5.3.2). A request's fixed latency is therefore the sum of each
//! element's handling time plus the queue hops between them, with the
//! B-tree traversal contributing one step per space dimension (§4.2).
//!
//! [`ControllerPipeline::request_latency`] composes those pieces; the
//! defaults are calibrated so a single-page request on a 2-level space costs
//! ≈17 µs — the §7.3 measurement. [`HostStlPath`] is the same decomposition
//! for software NDS, where the request crosses the kernel I/O stack instead
//! of message queues; its default composes to §7.3's ≈41 µs.

use nds_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Fixed-latency model of the in-device STL pipeline (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerPipeline {
    /// PCIe/NVMe command handler: decode the extended command and fetch its
    /// argument page.
    pub command_handler: SimDuration,
    /// Message-queue hop between neighboring pipeline elements.
    pub queue_hop: SimDuration,
    /// Hops a request crosses end to end (command handler → translator →
    /// allocator → assembler → completion).
    pub hops: u32,
    /// Space-translator work per B-tree level (one level per dimension).
    pub per_tree_level: SimDuration,
    /// Allocator/garbage-collector check per request.
    pub allocator_check: SimDuration,
    /// Data-assembler setup (buffer carve-out, DMA descriptors).
    pub assembler_setup: SimDuration,
    /// Completion posting back to the host.
    pub completion: SimDuration,
}

impl ControllerPipeline {
    /// The Stingray-class defaults: composes to 17 µs for a 2-level space —
    /// the §7.3 worst-case single-page measurement.
    pub fn stingray() -> Self {
        ControllerPipeline {
            command_handler: SimDuration::from_micros(3),
            queue_hop: SimDuration::from_micros(1),
            hops: 5,
            per_tree_level: SimDuration::from_micros(2),
            allocator_check: SimDuration::from_micros(1),
            assembler_setup: SimDuration::from_micros(2),
            completion: SimDuration::from_micros(2),
        }
    }

    /// Fixed latency of one request against a space with `tree_levels`
    /// dimensions. Per §7.3, one traversal serves the whole request however
    /// many building blocks it covers, so this does not scale with request
    /// size — which is exactly why the overhead amortizes.
    pub fn request_latency(&self, tree_levels: usize) -> SimDuration {
        self.command_handler
            + self.queue_hop * u64::from(self.hops)
            + self.per_tree_level * tree_levels as u64
            + self.allocator_check
            + self.assembler_setup
            + self.completion
    }

    /// Divides every component by `divisor` (scaled-cost reproductions).
    #[must_use]
    pub fn scaled(mut self, divisor: u64) -> Self {
        self.command_handler = self.command_handler / divisor;
        self.queue_hop = self.queue_hop / divisor;
        self.per_tree_level = self.per_tree_level / divisor;
        self.allocator_check = self.allocator_check / divisor;
        self.assembler_setup = self.assembler_setup / divisor;
        self.completion = self.completion / divisor;
        self
    }
}

/// Fixed-latency model of the software-NDS request path: the STL runs on
/// the host, so every request crosses the syscall boundary, the LightNVM
/// driver, and an interrupt-driven completion (Fig. 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostStlPath {
    /// User→kernel crossing and argument marshalling.
    pub syscall: SimDuration,
    /// Space-translator work per B-tree level on the host CPU.
    pub per_tree_level: SimDuration,
    /// Coordinate arithmetic and request-vector construction.
    pub translate: SimDuration,
    /// LightNVM driver work: physical-page vector setup and pinning.
    pub driver_setup: SimDuration,
    /// Completion interrupt and wake-up.
    pub completion: SimDuration,
}

impl HostStlPath {
    /// Defaults composing to 41 µs for a 2-level space (§7.3).
    pub fn linux_lightnvm() -> Self {
        HostStlPath {
            syscall: SimDuration::from_micros(9),
            per_tree_level: SimDuration::from_nanos(1_500),
            translate: SimDuration::from_micros(4),
            driver_setup: SimDuration::from_micros(15),
            completion: SimDuration::from_micros(10),
        }
    }

    /// Fixed latency of one request against a space with `tree_levels`
    /// dimensions.
    pub fn request_latency(&self, tree_levels: usize) -> SimDuration {
        self.syscall
            + self.per_tree_level * tree_levels as u64
            + self.translate
            + self.driver_setup
            + self.completion
    }

    /// Divides every component by `divisor` (scaled-cost reproductions).
    #[must_use]
    pub fn scaled(mut self, divisor: u64) -> Self {
        self.syscall = self.syscall / divisor;
        self.per_tree_level = self.per_tree_level / divisor;
        self.translate = self.translate / divisor;
        self.driver_setup = self.driver_setup / divisor;
        self.completion = self.completion / divisor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stingray_composes_to_paper_17us() {
        let p = ControllerPipeline::stingray();
        assert_eq!(
            p.request_latency(2),
            SimDuration::from_micros(17),
            "§7.3: 17 µs added latency for a 2-D space"
        );
    }

    #[test]
    fn host_path_composes_to_paper_41us() {
        let p = HostStlPath::linux_lightnvm();
        assert_eq!(
            p.request_latency(2),
            SimDuration::from_micros(41),
            "§7.3: 41 µs added latency for a 2-D space"
        );
    }

    #[test]
    fn deeper_spaces_cost_more_per_level() {
        let p = ControllerPipeline::stingray();
        let d2 = p.request_latency(2);
        let d3 = p.request_latency(3);
        assert_eq!(d3 - d2, p.per_tree_level);
    }

    #[test]
    fn scaling_divides_components() {
        let p = ControllerPipeline::stingray().scaled(2);
        assert!(p.request_latency(2) <= SimDuration::from_micros(9));
        let h = HostStlPath::linux_lightnvm().scaled(2);
        assert!(h.request_latency(2) <= SimDuration::from_micros(21));
    }
}
