//! Cross-tenant namespace isolation: a tenant can never read or write
//! another tenant's dataspaces, and interleaved multi-tenant traffic
//! never corrupts any tenant's data — verified byte-exactly against the
//! engine's positional pattern.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_system::{
    tenant_pattern_byte, Arrival, HardwareNds, OpKind, SystemConfig, SystemError, TenantOp,
    TenantSet, TenantSpec, TrafficEngine,
};
use proptest::prelude::*;

const SEED: u64 = 404;

fn two_tenant_set() -> TenantSet {
    let mut set = TenantSet::new(SEED);
    for t in 0..2u32 {
        set = set.with_tenant(TenantSpec {
            weight: 1,
            depth: 2,
            arrival: Arrival::Closed { outstanding: 2 },
            datasets: vec![(Shape::new([32, 32]), ElementType::F32)],
            ops: vec![TenantOp {
                kind: OpKind::Read,
                dataset: 0,
                coord: vec![u64::from(t), 0],
                sub_dims: vec![8, 32],
            }],
            total_ops: 2,
        });
    }
    set
}

#[test]
fn foreign_dataset_access_is_a_typed_error() {
    let set = two_tenant_set();
    let sys = HardwareNds::new(SystemConfig::small_test());
    let mut engine = TrafficEngine::new(sys, &set).expect("setup");
    let own = engine.dataset_id(0, 0).expect("tenant 0 dataset");
    let foreign = engine.dataset_id(1, 0).expect("tenant 1 dataset");
    assert_eq!(engine.owner_of(own), Some(0));
    assert_eq!(engine.owner_of(foreign), Some(1));

    // Reads and writes through the guard against a foreign dataset fail
    // with the dedicated isolation error, not a generic one.
    let mut buf = Vec::new();
    let read = engine.read_as(0, foreign, &[0, 0], &[8, 32], &mut buf);
    assert!(
        matches!(
            read,
            Err(SystemError::TenantIsolation { tenant: 0, dataset }) if dataset == foreign
        ),
        "cross-tenant read not rejected: {read:?}"
    );
    let data = vec![0xAAu8; 8 * 32 * 4];
    let write = engine.write_as(0, foreign, &[0, 0], &[8, 32], &data);
    assert!(
        matches!(
            write,
            Err(SystemError::TenantIsolation { tenant: 0, dataset }) if dataset == foreign
        ),
        "cross-tenant write not rejected: {write:?}"
    );
    // Guarded access to the tenant's own dataset still works.
    engine
        .read_as(0, own, &[0, 0], &[8, 32], &mut buf)
        .expect("own-dataset read");
}

#[test]
fn rejected_cross_tenant_write_leaves_victim_intact() {
    let set = two_tenant_set();
    let sys = HardwareNds::new(SystemConfig::small_test());
    let mut engine = TrafficEngine::new(sys, &set).expect("setup");
    let victim = engine.dataset_id(1, 0).expect("tenant 1 dataset");
    let garbage = vec![0xFFu8; 32 * 32 * 4];
    assert!(engine
        .write_as(0, victim, &[0, 0], &[32, 32], &garbage)
        .is_err());
    // The victim's full dataset still holds its own pattern byte-exactly.
    let mut buf = Vec::new();
    engine
        .read_as(1, victim, &[0, 0], &[32, 32], &mut buf)
        .expect("victim read");
    for (offset, &byte) in buf.iter().enumerate() {
        assert_eq!(
            byte,
            tenant_pattern_byte(SEED, 1, 0, offset as u64),
            "victim dataset corrupted at byte {offset}"
        );
    }
}

/// One randomized tenant population: per-tenant op mixes over private
/// 32×32 datasets with varying region shapes and read/write splits.
#[derive(Debug, Clone)]
struct FuzzSet {
    seed: u64,
    tenants: Vec<Vec<TenantOp>>,
    total_ops: u64,
}

fn tenant_ops() -> impl Strategy<Value = Vec<TenantOp>> {
    prop::collection::vec(
        (0u64..4, 0u64..4, any::<bool>()).prop_map(|(r, c, is_read)| TenantOp {
            kind: if is_read { OpKind::Read } else { OpKind::Write },
            dataset: 0,
            coord: vec![r, c],
            sub_dims: vec![8, 8],
        }),
        1..6,
    )
}

fn fuzz_set() -> impl Strategy<Value = FuzzSet> {
    (
        0u64..1_000_000,
        prop::collection::vec(tenant_ops(), 2..5),
        4u64..10,
    )
        .prop_map(|(seed, tenants, total_ops)| FuzzSet {
            seed,
            tenants,
            total_ops,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fuzz over interleaved per-tenant mixes: every in-run read verifies
    /// against its owner's pattern, and after the run each tenant's full
    /// dataset still round-trips byte-exactly — no interleaving of other
    /// tenants' writes can leak into it.
    #[test]
    fn interleaved_mixes_preserve_per_tenant_bytes(fuzz in fuzz_set()) {
        let mut set = TenantSet::new(fuzz.seed);
        for ops in &fuzz.tenants {
            set = set.with_tenant(TenantSpec {
                weight: 1,
                depth: 2,
                arrival: Arrival::Closed { outstanding: 2 },
                datasets: vec![(Shape::new([32, 32]), ElementType::F32)],
                ops: ops.clone(),
                total_ops: fuzz.total_ops,
            });
        }
        let sys = HardwareNds::new(SystemConfig::small_test());
        let mut engine = TrafficEngine::new(sys, &set).expect("setup");
        engine.run().expect("run");
        for c in engine.completions() {
            prop_assert!(
                c.data_ok,
                "tenant {} op {} read bytes outside its pattern",
                c.tenant,
                c.op_index
            );
        }
        let mut buf = Vec::new();
        for t in 0..fuzz.tenants.len() as u32 {
            let id = engine.dataset_id(t, 0).expect("dataset");
            engine
                .read_as(t, id, &[0, 0], &[32, 32], &mut buf)
                .expect("full read");
            for (offset, &byte) in buf.iter().enumerate() {
                prop_assert_eq!(
                    byte,
                    tenant_pattern_byte(fuzz.seed, t, 0, offset as u64),
                    "tenant {} byte {} corrupted", t, offset
                );
            }
        }
    }
}
