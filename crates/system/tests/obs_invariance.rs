//! Schedule neutrality and determinism of the observability layer.
//!
//! The observability hooks (event journal, latency histograms, busy
//! timelines) only *observe* completion instants the schedulers already
//! computed — they never acquire a shared resource or feed state back into
//! a timing decision. These tests prove it the strong way: every modeled
//! quantity of a Fig. 9-style sweep must be bit-identical with full
//! instrumentation on vs everything off, on every architecture — including
//! under an active fault plan, where the retry paths emit the most events.
//!
//! They also pin down report determinism: two identical instrumented runs
//! must serialize to byte-identical [`RunReport`] JSON, and that JSON must
//! match the golden file in `tests/golden/` (regenerate with
//! `NDS_BLESS_GOLDEN=1 cargo test -p nds-system --test obs_invariance`).

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_faults::FaultConfig;
use nds_sim::ObsConfig;
use nds_system::{
    BaselineSystem, HardwareNds, OracleSystem, ReadOutcome, SoftwareNds, StorageFrontEnd,
    SystemConfig, WriteOutcome,
};

const N: u64 = 512;
const TILE: u64 = 64;

fn config(obs: ObsConfig) -> SystemConfig {
    SystemConfig::small_test().with_observability(obs)
}

fn faulty_config(obs: ObsConfig) -> SystemConfig {
    SystemConfig::small_test()
        .with_faults(FaultConfig::with_rate(424242, 0.05))
        .with_observability(obs)
}

/// The request trace: a miniature Fig. 9 sweep (rows, columns, submatrix,
/// wide tile, whole matrix), issued twice.
fn sweep() -> Vec<(Vec<u64>, Vec<u64>)> {
    let mut requests = vec![
        (vec![0, 0], vec![N, 64]),
        (vec![0, 0], vec![64, N]),
        (vec![1, 1], vec![128, 128]),
        (vec![0, 1], vec![256, 128]),
        (vec![0, 0], vec![N, N]),
    ];
    let repeats = requests.clone();
    requests.extend(repeats);
    requests
}

/// Runs write + sweep on one front-end and returns every modeled outcome.
fn run<S: StorageFrontEnd>(mut sys: S) -> (WriteOutcome, Vec<ReadOutcome>) {
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    let w = sys
        .write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    let reads = sweep()
        .iter()
        .map(|(coord, sub)| sys.read(id, &shape, coord, sub).expect("read"))
        .collect();
    (w, reads)
}

fn assert_neutral(on: (WriteOutcome, Vec<ReadOutcome>), off: (WriteOutcome, Vec<ReadOutcome>)) {
    assert_eq!(on.0, off.0, "write outcome diverges with obs on vs off");
    for (i, (a, b)) in on.1.iter().zip(off.1.iter()).enumerate() {
        assert_eq!(a, b, "read outcome {i} diverges with obs on vs off");
    }
}

#[test]
fn baseline_outcomes_identical_with_obs_on_and_off() {
    assert_neutral(
        run(BaselineSystem::new(config(ObsConfig::full()))),
        run(BaselineSystem::new(config(ObsConfig::disabled()))),
    );
}

#[test]
fn software_nds_outcomes_identical_with_obs_on_and_off() {
    assert_neutral(
        run(SoftwareNds::new(config(ObsConfig::full()))),
        run(SoftwareNds::new(config(ObsConfig::disabled()))),
    );
}

#[test]
fn hardware_nds_outcomes_identical_with_obs_on_and_off() {
    assert_neutral(
        run(HardwareNds::new(config(ObsConfig::full()))),
        run(HardwareNds::new(config(ObsConfig::disabled()))),
    );
}

#[test]
fn oracle_outcomes_identical_with_obs_on_and_off() {
    assert_neutral(
        run(OracleSystem::with_tile(
            config(ObsConfig::full()),
            vec![TILE, TILE],
        )),
        run(OracleSystem::with_tile(
            config(ObsConfig::disabled()),
            vec![TILE, TILE],
        )),
    );
}

#[test]
fn fault_recovery_outcomes_identical_with_obs_on_and_off() {
    // The retry paths emit the densest event traffic (FaultInjected,
    // RetryScheduled, re-recorded completions); they must stay neutral too.
    assert_neutral(
        run(SoftwareNds::new(faulty_config(ObsConfig::full()))),
        run(SoftwareNds::new(faulty_config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(HardwareNds::new(faulty_config(ObsConfig::full()))),
        run(HardwareNds::new(faulty_config(ObsConfig::disabled()))),
    );
}

#[test]
fn tracing_outcomes_identical_with_trace_on_and_off() {
    // Causal tracing (PR 5) piggybacks on the same observe-only hooks; the
    // trace clock and per-command partitions must never move a schedule.
    assert_neutral(
        run(BaselineSystem::new(config(ObsConfig::traced()))),
        run(BaselineSystem::new(config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(SoftwareNds::new(config(ObsConfig::traced()))),
        run(SoftwareNds::new(config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(HardwareNds::new(config(ObsConfig::traced()))),
        run(HardwareNds::new(config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(OracleSystem::with_tile(
            config(ObsConfig::traced()),
            vec![TILE, TILE],
        )),
        run(OracleSystem::with_tile(
            config(ObsConfig::disabled()),
            vec![TILE, TILE],
        )),
    );
}

#[test]
fn tracing_outcomes_identical_under_fault_plan() {
    // Retry paths run with a trace context set (tagged FaultInjected /
    // RetryScheduled events); recovery timing must stay bit-identical.
    assert_neutral(
        run(SoftwareNds::new(faulty_config(ObsConfig::traced()))),
        run(SoftwareNds::new(faulty_config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(HardwareNds::new(faulty_config(ObsConfig::traced()))),
        run(HardwareNds::new(faulty_config(ObsConfig::disabled()))),
    );
}

#[test]
fn trace_export_present_only_when_traced() {
    let shape = Shape::new([N, N]);
    let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    // Full instrumentation without tracing: no export.
    let mut sys = SoftwareNds::new(config(ObsConfig::full()));
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    assert!(
        sys.trace_export().is_none(),
        "untraced run must export None"
    );
    // Traced run: export carries tagged events on the run-long clock.
    let mut sys = SoftwareNds::new(config(ObsConfig::traced()));
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    sys.read(id, &shape, &[1, 1], &[128, 128]).expect("read");
    let export = sys.trace_export().expect("traced run must export Some");
    assert!(!export.events.is_empty());
    assert!(export.events.iter().all(|e| e.trace != 0));
    assert!(export.makespan > nds_sim::SimDuration::ZERO);
    assert!(!export.channels.is_empty(), "channel busy totals missing");
    let sorted = export.events.windows(2).all(|w| w[0].at <= w[1].at);
    assert!(sorted, "export events must be ordered by instant");
}

/// One instrumented run's serialized report.
fn instrumented_report<S: StorageFrontEnd>(make: impl FnOnce(SystemConfig) -> S) -> String {
    let mut sys = make(config(ObsConfig::full()));
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    for (coord, sub) in sweep() {
        sys.read(id, &shape, &coord, &sub).expect("read");
    }
    sys.run_report().to_json()
}

#[test]
fn run_report_json_is_byte_identical_across_runs() {
    let first = instrumented_report(SoftwareNds::new);
    let second = instrumented_report(SoftwareNds::new);
    assert_eq!(first, second, "repeated runs must serialize identically");
    let hw_first = instrumented_report(HardwareNds::new);
    let hw_second = instrumented_report(HardwareNds::new);
    assert_eq!(hw_first, hw_second);
}

#[test]
fn run_report_matches_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/obs_report_software_nds.json"
    );
    let mut actual = instrumented_report(SoftwareNds::new);
    actual.push('\n');
    if std::env::var_os("NDS_BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, &actual).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with NDS_BLESS_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "RunReport JSON drifted from tests/golden/obs_report_software_nds.json; \
         if the change is intentional, regenerate with NDS_BLESS_GOLDEN=1"
    );
}

#[test]
fn instrumented_report_actually_contains_observations() {
    // Guard against the neutrality tests passing vacuously because the
    // hooks silently stopped recording.
    let json = instrumented_report(HardwareNds::new);
    for needle in [
        "\"flash.read_page\"",
        "\"link.command\"",
        "\"read.latency\"",
        "\"write.latency\"",
        "\"journal\"",
        "\"timelines\"",
        "CommandIssued",
    ] {
        assert!(json.contains(needle), "report lost {needle}");
    }
}

// ---------------------------------------------------------------------------
// Windowed time-series sampler (PR 10): the same neutrality and determinism
// contracts, with the metric series enabled on top of full instrumentation.
// ---------------------------------------------------------------------------

fn metrics_config() -> SystemConfig {
    config(ObsConfig::full().with_metrics())
}

#[test]
fn metrics_outcomes_identical_with_metrics_on_and_off() {
    assert_neutral(
        run(BaselineSystem::new(metrics_config())),
        run(BaselineSystem::new(config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(SoftwareNds::new(metrics_config())),
        run(SoftwareNds::new(config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(HardwareNds::new(metrics_config())),
        run(HardwareNds::new(config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(OracleSystem::with_tile(metrics_config(), vec![TILE, TILE])),
        run(OracleSystem::with_tile(
            config(ObsConfig::disabled()),
            vec![TILE, TILE],
        )),
    );
}

#[test]
fn metrics_outcomes_identical_under_fault_plan() {
    // The retry paths route FaultInjected / RetryScheduled through the same
    // choke point that feeds the series; sampling them must not move time.
    let faulty_metrics = || faulty_config(ObsConfig::full().with_metrics());
    assert_neutral(
        run(SoftwareNds::new(faulty_metrics())),
        run(SoftwareNds::new(faulty_config(ObsConfig::disabled()))),
    );
    assert_neutral(
        run(HardwareNds::new(faulty_metrics())),
        run(HardwareNds::new(faulty_config(ObsConfig::disabled()))),
    );
}

#[test]
fn tenant_engine_neutral_under_metrics() {
    use nds_system::TrafficEngine;
    use nds_workloads::tenants::mixed_open_closed;
    let set = mixed_open_closed(42, 16, 8);
    let run_engine = |metrics: bool| {
        let obs = if metrics {
            ObsConfig::full().with_metrics()
        } else {
            ObsConfig::disabled()
        };
        let sys = HardwareNds::new(SystemConfig::small_test().with_observability(obs));
        let mut engine = TrafficEngine::new(sys, &set).expect("tenant setup");
        engine.configure_metrics(&obs);
        engine.run().expect("engine run");
        (engine.makespan(), engine.report().to_json())
    };
    let (makespan_on, report_on) = run_engine(true);
    let (makespan_off, report_off) = run_engine(false);
    assert_eq!(makespan_on, makespan_off, "metrics moved the WFQ schedule");
    // `report()` is built exclusively from always-on engine-side accounting:
    // it must serialize identically whether or not the sampler ran.
    assert_eq!(report_on, report_off, "engine report lost obs-invariance");
}

/// Replays a seeded cluster mix with a mid-run device kill; returns every
/// modeled per-op outcome.
fn cluster_replay(obs: ObsConfig) -> Vec<(u64, u64, u64)> {
    use nds_faults::ClusterFaultPlan;
    use nds_system::{ClusterConfig, NdsCluster};
    use nds_workloads::cluster::{cluster_dataset, cluster_mix, payload_byte};
    let ops = 48u64;
    let mix = cluster_mix(7, ops as usize, 60);
    let cfg = ClusterConfig::new(4, 2)
        .with_shard_rows(24)
        .with_seed(7)
        .with_observability(obs)
        .with_plan(ClusterFaultPlan::kill_at(ops / 2, 0));
    let mut cluster = NdsCluster::new(cfg, |_| {
        HardwareNds::new(SystemConfig::small_test().with_observability(obs))
    });
    let (shape, element) = cluster_dataset();
    let id = cluster
        .create_dataset(shape.clone(), element)
        .expect("create");
    let esize = element.size() as u64;
    let mut outcomes = Vec::new();
    let mut buf = Vec::new();
    for op in &mix {
        if op.write {
            let elems: u64 = op.sub_dims.iter().product();
            let data: Vec<u8> = (0..elems * esize)
                .map(|i| payload_byte(op.salt, i))
                .collect();
            let out = cluster
                .write(id, &shape, &op.coord, &op.sub_dims, &data)
                .expect("clustered write");
            outcomes.push((out.bytes, out.latency.as_nanos(), out.commands));
        } else {
            let m = cluster
                .read_into(id, &shape, &op.coord, &op.sub_dims, &mut buf)
                .expect("clustered read");
            outcomes.push((m.bytes, m.io_latency.as_nanos(), m.commands));
        }
    }
    outcomes
}

#[test]
fn cluster_outcomes_identical_with_metrics_on_and_off_under_fault_plan() {
    assert_eq!(
        cluster_replay(ObsConfig::full().with_metrics()),
        cluster_replay(ObsConfig::disabled()),
        "cluster failover timing diverges with metrics on vs off"
    );
}

/// One instrumented-with-metrics run's windowed-series artifact.
fn instrumented_metrics<S: StorageFrontEnd>(make: impl FnOnce(SystemConfig) -> S) -> String {
    let mut sys = make(metrics_config());
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    for (coord, sub) in sweep() {
        sys.read(id, &shape, &coord, &sub).expect("read");
    }
    sys.run_report().metrics_json()
}

#[test]
fn metrics_json_is_byte_identical_across_runs() {
    let first = instrumented_metrics(SoftwareNds::new);
    let second = instrumented_metrics(SoftwareNds::new);
    assert_eq!(first, second, "repeated runs must serialize identically");
    let hw_first = instrumented_metrics(HardwareNds::new);
    let hw_second = instrumented_metrics(HardwareNds::new);
    assert_eq!(hw_first, hw_second);
}

#[test]
fn series_window_sums_match_run_totals() {
    // The fold property: for every counter series, the retained window
    // values plus the overflow weight account exactly for the run total.
    let mut sys = SoftwareNds::new(metrics_config());
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    for (coord, sub) in sweep() {
        sys.read(id, &shape, &coord, &sub).expect("read");
    }
    let report = sys.run_report();
    assert!(
        report.series_window > nds_sim::SimDuration::ZERO,
        "series window width missing from the report"
    );
    let mut counters = 0usize;
    for (name, s) in &report.series {
        if matches!(s.kind, nds_sim::SeriesKind::Counter) {
            assert_eq!(
                s.buckets.iter().sum::<u64>() + s.overflow,
                s.total,
                "window fold of {name} does not sum to the run total"
            );
            counters += 1;
        } else {
            let peak = s.buckets.iter().copied().max().unwrap_or(0).max(s.overflow);
            assert_eq!(peak, s.total, "gauge {name} high-water != max window");
        }
    }
    assert!(counters > 0, "no counter series recorded");
    // Cross-check one series against ground truth: one write plus the
    // ten-read sweep, each counted once at the host front end.
    let host_ops = report.series.get("host.ops").expect("host.ops series");
    assert_eq!(host_ops.total, 1 + sweep().len() as u64);
}

#[test]
fn cluster_failover_series_is_not_vacuous() {
    // A failover run must actually produce failover telemetry: series hits
    // and a human-readable mark at the kill instant.
    use nds_faults::ClusterFaultPlan;
    use nds_system::{ClusterConfig, NdsCluster};
    use nds_workloads::cluster::{cluster_dataset, cluster_mix, payload_byte};
    let ops = 48u64;
    let mix = cluster_mix(7, ops as usize, 60);
    let cfg = ClusterConfig::new(4, 2)
        .with_shard_rows(24)
        .with_seed(7)
        .with_observability(ObsConfig::full().with_metrics())
        .with_plan(ClusterFaultPlan::kill_at(ops / 2, 0));
    let mut cluster = NdsCluster::new(cfg, |_| {
        HardwareNds::new(
            SystemConfig::small_test().with_observability(ObsConfig::full().with_metrics()),
        )
    });
    let (shape, element) = cluster_dataset();
    let id = cluster
        .create_dataset(shape.clone(), element)
        .expect("create");
    let esize = element.size() as u64;
    let mut buf = Vec::new();
    for op in &mix {
        if op.write {
            let elems: u64 = op.sub_dims.iter().product();
            let data: Vec<u8> = (0..elems * esize)
                .map(|i| payload_byte(op.salt, i))
                .collect();
            cluster
                .write(id, &shape, &op.coord, &op.sub_dims, &data)
                .expect("clustered write");
        } else {
            cluster
                .read_into(id, &shape, &op.coord, &op.sub_dims, &mut buf)
                .expect("clustered read");
        }
    }
    let report = cluster.full_report();
    let failovers = report
        .series
        .get("cluster.failover_events")
        .expect("failover series missing");
    assert!(
        failovers.total > 0,
        "device kill produced no failover events"
    );
    assert!(
        report.marks.iter().any(|m| m.label.contains("down")),
        "no device-down mark recorded"
    );
    let ops_series = report.series.get("cluster.ops").expect("cluster.ops");
    assert_eq!(ops_series.total, ops, "cluster op series lost operations");
}
