//! Regression tests pinning the paper's headline *shapes* at full device
//! geometry (32 channels, 4 KB pages, NVMeoF link, 256×256 f64 blocks).
//! These are the relations §7.1 reports; `EXPERIMENTS.md` records the
//! measured magnitudes.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_faults::FaultConfig;
use nds_system::{BaselineSystem, HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig};

const N: u64 = 4096;

fn setup<S: StorageFrontEnd>(mut sys: S) -> (S, nds_system::DatasetId, Shape) {
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F64)
        .expect("create");
    let bytes: Vec<u8> = (0..N * N * 8).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    (sys, id, shape)
}

fn bw(out: &nds_system::ReadOutcome) -> f64 {
    out.effective_bandwidth().as_mib_per_sec()
}

#[test]
fn fig9a_row_fetch_baseline_matches_hardware_software_trails() {
    let config = SystemConfig::paper_scale();
    let (mut base, b_id, shape) = setup(BaselineSystem::new(config.clone()));
    let (mut sw, s_id, _) = setup(SoftwareNds::new(config.clone()));
    let (mut hw, h_id, _) = setup(HardwareNds::new(config));

    let b = base.read(b_id, &shape, &[0, 0], &[N, 512]).expect("rows");
    let s = sw.read(s_id, &shape, &[0, 0], &[N, 512]).expect("rows");
    let h = hw.read(h_id, &shape, &[0, 0], &[N, 512]).expect("rows");

    // Hardware NDS within 5% of the baseline on row streaming (§7.1:
    // "almost identical").
    assert!(
        (bw(&h) / bw(&b) - 1.0).abs() < 0.05,
        "hardware {} vs baseline {}",
        bw(&h),
        bw(&b)
    );
    // Software NDS pays its 2 KB-chunk assembly: 5–30% below baseline.
    let penalty = 1.0 - bw(&s) / bw(&b);
    assert!(
        (0.05..0.30).contains(&penalty),
        "software row-fetch penalty {penalty:.2} outside the paper band"
    );
}

#[test]
fn fig9b_column_fetch_baseline_collapses_nds_does_not() {
    let config = SystemConfig::paper_scale();
    let (mut base, b_id, shape) = setup(BaselineSystem::new(config.clone()));
    let (mut hw, h_id, _) = setup(HardwareNds::new(config));

    let b = base.read(b_id, &shape, &[0, 0], &[512, N]).expect("cols");
    let h = hw.read(h_id, &shape, &[0, 0], &[512, N]).expect("cols");
    assert!(
        bw(&h) > 4.0 * bw(&b),
        "columns: NDS {} should be several times the row-store baseline {}",
        bw(&h),
        bw(&b)
    );
}

#[test]
fn fig9c_submatrix_order_baseline_software_hardware() {
    let config = SystemConfig::paper_scale();
    let (mut base, b_id, shape) = setup(BaselineSystem::new(config.clone()));
    let (mut sw, s_id, _) = setup(SoftwareNds::new(config.clone()));
    let (mut hw, h_id, _) = setup(HardwareNds::new(config));

    let b = base
        .read(b_id, &shape, &[1, 1], &[1024, 1024])
        .expect("tile");
    let s = sw.read(s_id, &shape, &[1, 1], &[1024, 1024]).expect("tile");
    let h = hw.read(h_id, &shape, &[1, 1], &[1024, 1024]).expect("tile");
    assert!(
        bw(&b) < bw(&s) && bw(&s) < bw(&h),
        "submatrix ordering violated: baseline {} / software {} / hardware {}",
        bw(&b),
        bw(&s),
        bw(&h)
    );
    assert!(bw(&h) > 2.0 * bw(&b), "NDS should win big on tiles");
}

#[test]
fn fig9d_write_penalties_in_paper_bands() {
    let config = SystemConfig::paper_scale();
    let shape = Shape::new([2048, 2048]);
    let bytes: Vec<u8> = (0..2048u64 * 2048 * 8).map(|i| (i % 251) as u8).collect();

    let mut results = Vec::new();
    let mut base = BaselineSystem::new(config.clone());
    let mut sw = SoftwareNds::new(config.clone());
    let mut hw = HardwareNds::new(config);
    for sys in [
        &mut base as &mut dyn StorageFrontEnd,
        &mut sw as &mut dyn StorageFrontEnd,
        &mut hw as &mut dyn StorageFrontEnd,
    ] {
        let id = sys
            .create_dataset(shape.clone(), ElementType::F64)
            .expect("create");
        let out = sys
            .write(id, &shape, &[0, 0], &[2048, 2048], &bytes)
            .expect("write");
        results.push(out.effective_bandwidth().as_mib_per_sec());
    }
    let (b, s, h) = (results[0], results[1], results[2]);
    let sw_penalty = 1.0 - s / b;
    let hw_penalty = 1.0 - h / b;
    // §7.1: software −30%, hardware −17%.
    assert!(
        (0.20..0.42).contains(&sw_penalty),
        "software write penalty {sw_penalty:.2} outside the paper band"
    );
    assert!(
        (0.08..0.28).contains(&hw_penalty),
        "hardware write penalty {hw_penalty:.2} outside the paper band"
    );
    assert!(
        hw_penalty < sw_penalty,
        "hardware must lose less than software on writes"
    );
}

/// Compiling the fault machinery in at rate 0 must not move a single
/// number: every [`WriteOutcome`] and [`ReadOutcome`] — payload bytes,
/// latencies, command counts — is equal (`PartialEq` over every field) to
/// the fault-free build's, on all three paper architectures, for both the
/// fig9-style row fetch and the tile fetch. This pins the "zero-rate plan
/// is schedule-identical to no plan" invariant at full paper geometry.
///
/// [`WriteOutcome`]: nds_system::WriteOutcome
/// [`ReadOutcome`]: nds_system::ReadOutcome
#[test]
fn fig9_shapes_unmoved_by_zero_rate_fault_plan() {
    // Moderate N keeps this regression fast; the relation under test is
    // exact equality, which does not need headline-scale volumes.
    let n: u64 = 512;
    let shape = Shape::new([n, n]);
    let bytes: Vec<u8> = (0..n * n * 8).map(|i| (i % 251) as u8).collect();
    let plain = SystemConfig::paper_scale();
    let zeroed = SystemConfig::paper_scale().with_faults(FaultConfig::with_rate(1221, 0.0));

    let run = |config: &SystemConfig| {
        let mut outcomes = Vec::new();
        let mut base = BaselineSystem::new(config.clone());
        let mut sw = SoftwareNds::new(config.clone());
        let mut hw = HardwareNds::new(config.clone());
        for sys in [
            &mut base as &mut dyn StorageFrontEnd,
            &mut sw as &mut dyn StorageFrontEnd,
            &mut hw as &mut dyn StorageFrontEnd,
        ] {
            let id = sys.create_dataset(shape.clone(), ElementType::F64).unwrap();
            let w = sys.write(id, &shape, &[0, 0], &[n, n], &bytes).unwrap();
            let rows = sys.read(id, &shape, &[0, 0], &[n, 64]).unwrap();
            let tile = sys.read(id, &shape, &[1, 1], &[128, 128]).unwrap();
            assert_eq!(
                sys.stats().get("faults.injected"),
                0,
                "{}: a zero-rate plan must inject nothing",
                sys.name()
            );
            outcomes.push((sys.name(), w, rows, tile));
        }
        outcomes
    };

    for ((name, w0, r0, t0), (_, w1, r1, t1)) in run(&plain).into_iter().zip(run(&zeroed)) {
        assert_eq!(w0, w1, "{name}: write outcome moved by zero-rate plan");
        assert_eq!(r0, r1, "{name}: row-fetch outcome moved by zero-rate plan");
        assert_eq!(t0, t1, "{name}: tile-fetch outcome moved by zero-rate plan");
    }
}

#[test]
fn sec73_added_latency_in_paper_order() {
    // Single-page reads: baseline < hardware < software in latency; the
    // additions stay within the same order as a NAND page read.
    let config = SystemConfig::paper_scale();
    let page_elems = config.flash.geometry.page_size as u64 / 8;
    let shape = Shape::new([page_elems, 64]);
    let bytes: Vec<u8> = (0..page_elems * 64 * 8).map(|i| (i % 251) as u8).collect();

    let mut latencies = Vec::new();
    let mut base = BaselineSystem::new(config.clone());
    let mut sw = SoftwareNds::new(config.clone());
    let mut hw = HardwareNds::new(config);
    for sys in [
        &mut base as &mut dyn StorageFrontEnd,
        &mut sw as &mut dyn StorageFrontEnd,
        &mut hw as &mut dyn StorageFrontEnd,
    ] {
        let id = sys
            .create_dataset(shape.clone(), ElementType::F64)
            .expect("create");
        sys.write(id, &shape, &[0, 0], &[page_elems, 64], &bytes)
            .expect("write");
        let out = sys
            .read(id, &shape, &[0, 9], &[page_elems, 1])
            .expect("read");
        latencies.push(out.latency());
    }
    let (b, s, h) = (latencies[0], latencies[1], latencies[2]);
    assert!(b < h && h < s, "latency order must be baseline < hw < sw");
    let sw_added = (s - b).as_micros();
    let hw_added = (h - b).as_micros();
    assert!(
        (30..=60).contains(&sw_added),
        "software added latency {sw_added} µs vs paper's 41 µs"
    );
    assert!(
        (10..=30).contains(&hw_added),
        "hardware added latency {hw_added} µs vs paper's 17 µs"
    );
}
