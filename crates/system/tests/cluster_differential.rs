//! The cluster differential harness (ISSUE 9 acceptance criteria).
//!
//! Proves the three cluster-level guarantees:
//!
//! 1. **Pass-through identity** — a `k = 1, N = 1` cluster with the empty
//!    fault plan is schedule-identical to the bare device: every outcome
//!    matches and the device's own run report is byte-identical JSON.
//! 2. **No lost acknowledged writes** — a run with a device-kill (or
//!    link-down/restore) plan acknowledges the same writes as the
//!    fault-free golden run and finishes with byte-identical dataset
//!    contents, both against the golden run and against a host-side model.
//! 3. **Deterministic failover** — the same seed and plan produce a
//!    byte-identical journal and full report on a second run, including
//!    the re-replication and resync traffic.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Region, Shape};
use nds_faults::{ClusterFaultPlan, DeviceFault, DeviceFaultKind};
use nds_sim::ObsConfig;
use nds_system::{
    ClusterConfig, DatasetId, HardwareNds, NdsCluster, StorageFrontEnd, SystemConfig,
};

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic payload byte for element `i` of write `salt`.
fn pat(salt: u64, i: u64) -> u8 {
    (mix(salt ^ mix(i)) & 0xff) as u8
}

/// Applies a write to the host-side model of the dataset's canonical
/// contents, mirroring exactly what the cluster is asked to store.
fn apply_model(
    model: &mut [u8],
    view: &Shape,
    coord: &[u64],
    sub: &[u64],
    data: &[u8],
    esize: usize,
) {
    let region = Region::from_request(view, coord, sub).expect("model request");
    region.for_each_run(view, |buf, linear, len| {
        let src = buf as usize * esize;
        let dst = linear as usize * esize;
        let n = len as usize * esize;
        model[dst..dst + n].copy_from_slice(&data[src..src + n]);
    });
}

fn read_full(sys: &mut impl StorageFrontEnd, id: DatasetId, shape: &Shape) -> Vec<u8> {
    let zeros = vec![0u64; shape.ndims()];
    sys.read(id, shape, &zeros, shape.dims())
        .expect("full read")
        .data
}

/// The mixed write/read workload both runs of a differential pair execute:
/// a fixed cycle of aligned partition requests over one dataset, payloads
/// seeded per op. Returns the host-side model of the final contents and
/// the number of front-end ops issued.
fn run_workload(
    sys: &mut impl StorageFrontEnd,
    id: DatasetId,
    shape: &Shape,
    ops: usize,
    seed: u64,
) -> (Vec<u8>, u64) {
    let esize = ElementType::F32.size();
    let volume = shape.volume() as usize;
    let mut model = vec![0u8; volume * esize];

    // (sub_dims, coordinate grid) choices — all partition-aligned in the
    // canonical view of an [8, 16] dataset.
    let requests: Vec<(Vec<u64>, Vec<u64>)> = vec![
        (vec![8, 16], vec![0, 0]),
        (vec![4, 4], vec![1, 2]),
        (vec![4, 4], vec![0, 3]),
        (vec![8, 2], vec![0, 5]),
        (vec![2, 8], vec![2, 1]),
        (vec![4, 4], vec![1, 0]),
        (vec![8, 2], vec![0, 7]),
        (vec![2, 8], vec![0, 0]),
    ];

    let mut issued = 0u64;
    let mut buf = Vec::new();
    for op in 0..ops {
        let (sub, coord) = &requests[(mix(seed ^ op as u64) % requests.len() as u64) as usize];
        let elems: u64 = sub.iter().product();
        if op % 3 != 2 {
            // Write: fresh deterministic payload.
            let salt = mix(seed ^ 0x57 ^ op as u64);
            let data: Vec<u8> = (0..elems * esize as u64).map(|i| pat(salt, i)).collect();
            let out = sys
                .write(id, shape, coord, sub, &data)
                .expect("acked write");
            assert_eq!(out.bytes, data.len() as u64);
            apply_model(&mut model, shape, coord, sub, &data, esize);
        } else {
            // Read: must match the model exactly.
            let m = sys
                .read_into(id, shape, coord, sub, &mut buf)
                .expect("read");
            assert_eq!(m.bytes as usize, buf.len());
            let region = Region::from_request(shape, coord, sub).expect("request");
            region.for_each_run(shape, |b, linear, len| {
                let got = &buf[b as usize * esize..(b + len) as usize * esize];
                let want = &model[linear as usize * esize..(linear + len) as usize * esize];
                assert_eq!(got, want, "read diverged from model at op {op}");
            });
        }
        issued += 1;
    }
    (model, issued)
}

fn hardware_cluster(cfg: ClusterConfig) -> NdsCluster<HardwareNds> {
    NdsCluster::new(cfg, |_| HardwareNds::new(SystemConfig::small_test()))
}

#[test]
fn k1n1_passthrough_is_identical_to_bare_device() {
    let shape = Shape::new([8, 16]);
    let sys_cfg = SystemConfig::small_test().with_observability(ObsConfig::full());

    let mut bare = HardwareNds::new(sys_cfg.clone());
    let mut cluster = NdsCluster::new(ClusterConfig::new(1, 1).with_seed(3), |_| {
        HardwareNds::new(sys_cfg.clone())
    });

    let bare_id = bare
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("bare create");
    let cl_id = cluster
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("cluster create");
    assert_eq!(bare_id, cl_id, "pass-through allocates the same dataset id");

    let esize = ElementType::F32.size();
    let full: Vec<u8> = (0..shape.volume() * esize as u64)
        .map(|i| pat(0xf00d, i))
        .collect();
    let wb = bare
        .write(bare_id, &shape, &[0, 0], shape.dims(), &full)
        .expect("bare write");
    let wc = cluster
        .write(cl_id, &shape, &[0, 0], shape.dims(), &full)
        .expect("cluster write");
    assert_eq!(wb, wc, "write outcomes must be identical");

    let mut b1 = Vec::new();
    let mut b2 = Vec::new();
    for (coord, sub) in [
        (vec![0u64, 0u64], vec![4u64, 4u64]),
        (vec![1, 2], vec![4, 4]),
        (vec![0, 3], vec![8, 2]),
        (vec![3, 0], vec![2, 8]),
    ] {
        let rb = bare
            .read_into(bare_id, &shape, &coord, &sub, &mut b1)
            .expect("bare read");
        let rc = cluster
            .read_into(cl_id, &shape, &coord, &sub, &mut b2)
            .expect("cluster read");
        assert_eq!(rb, rc, "read metrics must be identical");
        assert_eq!(b1, b2, "read payloads must be identical");
    }

    // The composed device's own artifact is byte-identical to the bare
    // device's: the cluster added bookkeeping, never modeled time.
    let bare_json = bare.run_report().to_json();
    let dev_json = cluster.device(0).expect("device 0").run_report().to_json();
    assert_eq!(bare_json, dev_json, "device report diverged from bare run");
}

#[test]
fn device_kill_loses_no_acknowledged_writes() {
    let shape = Shape::new([8, 16]);
    let ops = 48usize;
    let seed = 11u64;
    let base = ClusterConfig::new(4, 2)
        .with_shard_rows(4)
        .with_seed(7)
        .with_observability(ObsConfig::full());

    // Golden: same cluster, empty plan.
    let mut golden = hardware_cluster(base.clone());
    let gid = golden
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("golden create");
    let (gmodel, _) = run_workload(&mut golden, gid, &shape, ops, seed);
    let gfinal = read_full(&mut golden, gid, &shape);
    assert_eq!(gfinal, gmodel, "golden final contents match the model");

    // Faulted: kill device 0 mid-run.
    let plan = ClusterFaultPlan::kill_at(ops as u64 / 2, 0);
    let mut faulted = hardware_cluster(base.clone().with_plan(plan));
    let fid = faulted
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("faulted create");
    assert_eq!(gid, fid);
    let (fmodel, _) = run_workload(&mut faulted, fid, &shape, ops, seed);
    let ffinal = read_full(&mut faulted, fid, &shape);

    assert_eq!(fmodel, gmodel, "same acknowledged-write set");
    assert_eq!(
        ffinal, gfinal,
        "recovered contents must be byte-identical to the golden run"
    );

    // Non-vacuity: the kill actually took replicas away and repair ran.
    let stats = faulted.stats();
    assert_eq!(stats.get("cluster.device_kills"), 1);
    assert!(
        stats.get("cluster.rereplications") >= 1,
        "device 0 held no replicas — pick a different seed"
    );
    assert_eq!(stats.get("cluster.rereplication_stranded"), 0);
    assert!(!faulted.is_alive(0));
    // No shard lists the dead device anymore.
    for h in 0..faulted.shard_count(fid).expect("dataset") {
        let holders = faulted.replica_devices(fid, h);
        assert!(
            !holders.contains(&0),
            "shard {h} still lists the dead device"
        );
        assert_eq!(holders.len(), 2, "shard {h} lost redundancy");
    }
}

#[test]
fn link_down_marks_stale_and_resync_restores_identity() {
    let shape = Shape::new([8, 16]);
    let ops = 48usize;
    let seed = 23u64;
    let base = ClusterConfig::new(3, 2)
        .with_shard_rows(4)
        .with_seed(5)
        .with_observability(ObsConfig::full());

    let mut golden = hardware_cluster(base.clone());
    let gid = golden
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("golden create");
    let (gmodel, _) = run_workload(&mut golden, gid, &shape, ops, seed);
    let gfinal = read_full(&mut golden, gid, &shape);

    let plan = ClusterFaultPlan::new(vec![
        DeviceFault {
            at_op: 10,
            device: 1,
            kind: DeviceFaultKind::LinkDown,
        },
        DeviceFault {
            at_op: 30,
            device: 1,
            kind: DeviceFaultKind::LinkRestore,
        },
    ]);
    let mut faulted = hardware_cluster(base.clone().with_plan(plan));
    let fid = faulted
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("faulted create");
    let (fmodel, _) = run_workload(&mut faulted, fid, &shape, ops, seed);
    let ffinal = read_full(&mut faulted, fid, &shape);

    assert_eq!(fmodel, gmodel);
    assert_eq!(ffinal, gfinal, "resynced contents diverged from golden");

    let stats = faulted.stats();
    assert_eq!(stats.get("cluster.link_downs"), 1);
    assert_eq!(stats.get("cluster.link_restores"), 1);
    assert!(
        stats.get("cluster.write_skips") >= 1,
        "no write hit the downed device — pick a different seed"
    );
    assert!(
        stats.get("cluster.resyncs") >= 1,
        "nothing went stale, resync untested"
    );
    assert_eq!(stats.get("cluster.resync_stranded"), 0);
    assert!(faulted.is_reachable(1), "link is back up");
}

#[test]
fn failover_is_deterministic_journal_and_report() {
    let run = || {
        let shape = Shape::new([8, 16]);
        let plan = ClusterFaultPlan::new(vec![
            DeviceFault {
                at_op: 8,
                device: 2,
                kind: DeviceFaultKind::LinkDown,
            },
            DeviceFault {
                at_op: 20,
                device: 0,
                kind: DeviceFaultKind::Kill,
            },
            DeviceFault {
                at_op: 28,
                device: 2,
                kind: DeviceFaultKind::LinkRestore,
            },
        ]);
        let cfg = ClusterConfig::new(4, 2)
            .with_shard_rows(4)
            .with_seed(9)
            .with_plan(plan)
            .with_observability(ObsConfig::full());
        let mut cluster = hardware_cluster(cfg);
        let id = cluster
            .create_dataset(shape.clone(), ElementType::F32)
            .expect("create");
        let _ = run_workload(&mut cluster, id, &shape, 40, 31);
        let contents = read_full(&mut cluster, id, &shape);
        (
            cluster.journal_lines(),
            cluster.full_report().to_json(),
            contents,
        )
    };
    let (j1, r1, c1) = run();
    let (j2, r2, c2) = run();
    assert!(!j1.is_empty(), "journal must not be vacuously empty");
    assert!(j1.contains("event=kill"), "journal records the kill");
    assert!(j1.contains("rereplicate"), "journal records the repair");
    assert_eq!(j1, j2, "journal must be byte-identical across runs");
    assert_eq!(r1, r2, "full report must be byte-identical across runs");
    assert_eq!(c1, c2);
}

#[test]
fn shard_straddling_requests_reassemble_exactly() {
    let shape = Shape::new([8, 10]);
    let esize = ElementType::F32.size();
    let cfg = ClusterConfig::new(2, 1).with_shard_rows(3).with_seed(13);
    let mut cluster = hardware_cluster(cfg);
    let id = cluster
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    assert_eq!(cluster.shard_count(id), Some(4), "rows 3+3+3+1");

    // Seed the full canonical contents.
    let full: Vec<u8> = (0..shape.volume() * esize as u64)
        .map(|i| pat(0xabcd, i))
        .collect();
    cluster
        .write(id, &shape, &[0, 0], shape.dims(), &full)
        .expect("full write");

    // Canonical sub-rectangles straddling shard boundaries.
    let mut buf = Vec::new();
    for (coord, sub) in [
        (vec![1u64, 1u64], vec![4u64, 5u64]), // rows 5..10: shards 1,2,3
        (vec![0, 0], vec![8, 5]),             // rows 0..5: shards 0,1
        (vec![0, 1], vec![2, 2]),             // rows 2..4: shards 0,1
    ] {
        let m = cluster
            .read_into(id, &shape, &coord, &sub, &mut buf)
            .expect("straddling read");
        assert_eq!(m.bytes as usize, buf.len());
        let region = Region::from_request(&shape, &coord, &sub).expect("request");
        region.for_each_run(&shape, |b, linear, len| {
            let got = &buf[b as usize * esize..(b + len) as usize * esize];
            let want = &full[linear as usize * esize..(linear + len) as usize * esize];
            assert_eq!(got, want, "straddling read mangled a run");
        });
    }

    // A non-canonical flat view whose partition crosses a shard boundary
    // (elements [16, 32) cross the row-24 boundary at shard 0 → 1).
    let flat = Shape::new([80]);
    let m = cluster
        .read_into(id, &flat, &[1], &[16], &mut buf)
        .expect("flat straddling read");
    assert_eq!(m.bytes as usize, buf.len());
    assert_eq!(&buf[..], &full[16 * esize..32 * esize]);

    // Partial write across a shard boundary, then read it back.
    let patch: Vec<u8> = (0..16 * esize as u64).map(|i| pat(0x9999, i)).collect();
    cluster
        .write(id, &flat, &[1], &[16], &patch)
        .expect("flat straddling write");
    cluster
        .read_into(id, &flat, &[1], &[16], &mut buf)
        .expect("read back");
    assert_eq!(&buf[..], &patch[..]);
}

#[test]
fn tenants_route_through_the_cluster_deterministically() {
    // The multi-tenant traffic engine is generic over `StorageFrontEnd`,
    // so the cluster drops in under it: every tenant dataset shards and
    // replicates across devices, a mid-run device kill re-replicates, and
    // the whole composition stays byte-deterministic with verified data.
    use nds_system::TrafficEngine;
    use nds_workloads::tenants::mixed_open_closed;

    let run = || {
        let cfg = ClusterConfig::new(3, 2)
            .with_shard_rows(16)
            .with_seed(21)
            .with_plan(ClusterFaultPlan::kill_at(20, 1))
            .with_observability(ObsConfig::full());
        let cluster = hardware_cluster(cfg);
        let set = mixed_open_closed(19, 4, 8);
        let mut engine = TrafficEngine::new(cluster, &set).expect("tenant setup");
        engine.run().expect("engine run over cluster");
        assert!(
            engine.completions().iter().all(|c| c.data_ok),
            "a tenant read bad bytes through the cluster"
        );
        engine.full_report().to_json()
    };
    let r1 = run();
    assert!(
        r1.contains("system.cluster.device_kills") && r1.contains("system.cluster.rereplications"),
        "kill did not reach the cluster under the engine"
    );
    assert_eq!(r1, run(), "tenants-over-cluster run is not deterministic");
}

#[test]
fn unreachable_shard_rejects_unacknowledged() {
    let shape = Shape::new([8, 16]);
    // Two devices, ONE replica: killing the holder makes its shards
    // unrecoverable (no surviving source) — the cluster must say so with a
    // typed error, never fabricate data or ack a write.
    let cfg = ClusterConfig::new(2, 1)
        .with_shard_rows(4)
        .with_seed(1)
        .with_plan(ClusterFaultPlan::kill_at(1, 0));
    let mut cluster = hardware_cluster(cfg);
    let id = cluster
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let esize = ElementType::F32.size();
    let full: Vec<u8> = vec![7u8; (shape.volume() as usize) * esize];
    cluster
        .write(id, &shape, &[0, 0], shape.dims(), &full)
        .expect("pre-kill write acked");

    // Device 0 held at least one single-replica shard for this seed.
    let holders: Vec<u32> = (0..cluster.shard_count(id).expect("ds"))
        .flat_map(|h| cluster.replica_devices(id, h))
        .collect();
    assert!(holders.contains(&0), "seed places nothing on device 0");

    // After the kill (applied before op index 1), full reads and writes
    // touching the lost shards fail loudly.
    let zeros = vec![0u64; shape.ndims()];
    let read = cluster.read(id, &shape, &zeros, shape.dims());
    assert!(
        matches!(read, Err(nds_system::SystemError::ShardUnavailable { .. })),
        "lost shard must surface a typed error, got {read:?}"
    );
    let write = cluster.write(id, &shape, &zeros, shape.dims(), &full);
    assert!(matches!(
        write,
        Err(nds_system::SystemError::ShardUnavailable { .. })
    ));
    let stats = cluster.stats();
    assert!(stats.get("cluster.rereplication_stranded") >= 1);
}
