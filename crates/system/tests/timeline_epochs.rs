//! Regression tests for the busy-timeline epoch fix (the single-stream
//! assumption the multi-tenant engine exposed): device and link resources
//! used to be *reset* at the start of every front-end operation, which
//! compressed every op's busy intervals into the first few timeline
//! buckets. With epoch folding, each operation's busy time lands at its
//! true offset on the run-long clock — op N+1's busy appears *after* the
//! cumulative latency of ops 1..N, never stacked on top of op 1's.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_sim::{ObsConfig, SimDuration};
use nds_system::{
    BaselineSystem, DatasetId, HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig,
};

const N: u64 = 64;

fn setup(sys: &mut dyn StorageFrontEnd) -> DatasetId {
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let data: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[N, N], &data)
        .expect("setup write");
    id
}

/// The nanosecond offset of the last nonzero bucket's *end* across all of
/// the report's timelines, plus the total recorded busy time.
fn timeline_extent(sys: &dyn StorageFrontEnd) -> (u64, SimDuration) {
    let report = sys.run_report();
    assert!(
        !report.timelines.is_empty(),
        "full observability records timelines"
    );
    let mut extent = 0u64;
    let mut busy_total = SimDuration::ZERO;
    for timeline in report.timelines.values() {
        let window = timeline.window.as_nanos();
        for (i, &busy) in timeline.buckets.iter().enumerate() {
            if busy > SimDuration::ZERO {
                extent = extent.max((i as u64 + 1) * window);
                busy_total += busy;
            }
        }
    }
    (extent, busy_total)
}

/// Scattered reads after a full-matrix write: later ops' busy intervals
/// must land beyond the earlier ops' cumulative latency instead of being
/// re-anchored at zero.
fn assert_epochs_accumulate(mut sys: impl StorageFrontEnd) {
    let shape = Shape::new([N, N]);
    let id = setup(&mut sys);
    // Column panels — the scattered pattern that exposed the bug (many
    // small commands per op, device busy spread across lanes).
    let mut elapsed = SimDuration::ZERO;
    let mut buf = Vec::new();
    for i in 0..4u64 {
        let m = sys
            .read_into(id, &shape, &[0, i % 8], &[N, 8], &mut buf)
            .expect("read");
        elapsed += m.latency();
    }
    let (extent, busy_total) = timeline_extent(&sys);
    assert!(busy_total > SimDuration::ZERO, "no busy time recorded");
    // The last read started after the first three finished, so some busy
    // time must sit beyond the cumulative latency of ops 1..3. Before the
    // epoch fix every op re-anchored to zero and the extent stayed within
    // one op's latency.
    let last = sys
        .read_into(id, &shape, &[0, 4], &[N, 8], &mut buf)
        .expect("read")
        .latency();
    let (extent_after, _) = timeline_extent(&sys);
    assert!(
        extent_after >= elapsed.as_nanos(),
        "timeline extent {extent_after} ns never reached the cumulative \
         latency {} ns of the preceding ops — busy time re-anchored to zero",
        elapsed.as_nanos()
    );
    assert!(
        extent_after >= extent,
        "timeline extent shrank after another op"
    );
    let _ = last;
}

#[test]
fn baseline_timeline_epochs_accumulate() {
    let config = SystemConfig::small_test().with_observability(ObsConfig::full());
    assert_epochs_accumulate(BaselineSystem::new(config));
}

#[test]
fn software_nds_timeline_epochs_accumulate() {
    let config = SystemConfig::small_test().with_observability(ObsConfig::full());
    assert_epochs_accumulate(SoftwareNds::new(config));
}

#[test]
fn hardware_nds_timeline_epochs_accumulate() {
    let config = SystemConfig::small_test().with_observability(ObsConfig::full());
    assert_epochs_accumulate(HardwareNds::new(config));
}
