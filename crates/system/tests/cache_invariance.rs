//! Fig-level invariance of the translation-plan cache.
//!
//! The plan cache and the batched/zero-copy data path are wall-clock
//! optimizations only: every *modeled* quantity — payload bytes, latency
//! breakdowns, command counts — must be bit-identical with the cache on or
//! off. These tests replay a Fig. 9-style request sweep (rows, columns,
//! submatrices, repeats that hit the cache) on every architecture and
//! compare whole [`ReadOutcome`]s/[`WriteOutcome`]s across the two
//! configurations.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_system::{
    BaselineSystem, HardwareNds, OracleSystem, ReadOutcome, SoftwareNds, StorageFrontEnd,
    SystemConfig, WriteOutcome,
};

const N: u64 = 512;

fn config_with_cache(capacity: usize) -> SystemConfig {
    let mut config = SystemConfig::small_test();
    config.stl.plan_cache_capacity = capacity;
    config
}

/// The request trace: a miniature Fig. 9 sweep, each request issued twice so
/// the second pass is served from the plan cache when it is enabled.
fn sweep() -> Vec<(Vec<u64>, Vec<u64>)> {
    let mut requests = vec![
        (vec![0, 0], vec![N, 64]),    // rows (9a)
        (vec![0, 0], vec![64, N]),    // columns (9b)
        (vec![1, 1], vec![128, 128]), // submatrix (9c)
        (vec![0, 1], vec![256, 128]), // wide tile
        (vec![0, 0], vec![N, N]),     // whole matrix
    ];
    let repeats = requests.clone();
    requests.extend(repeats);
    requests
}

/// Runs write + sweep on one front-end and returns every modeled outcome.
fn run<S: StorageFrontEnd>(mut sys: S) -> (WriteOutcome, Vec<ReadOutcome>) {
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    let w = sys
        .write(id, &shape, &[0, 0], &[N, N], &bytes)
        .expect("write");
    let reads = sweep()
        .iter()
        .map(|(coord, sub)| sys.read(id, &shape, coord, sub).expect("read"))
        .collect();
    (w, reads)
}

fn assert_invariant(on: (WriteOutcome, Vec<ReadOutcome>), off: (WriteOutcome, Vec<ReadOutcome>)) {
    assert_eq!(on.0, off.0, "write outcome diverges with cache on vs off");
    for (i, (a, b)) in on.1.iter().zip(off.1.iter()).enumerate() {
        assert_eq!(a, b, "read outcome {i} diverges with cache on vs off");
    }
}

#[test]
fn software_nds_outcomes_identical_with_cache_on_and_off() {
    assert_invariant(
        run(SoftwareNds::new(config_with_cache(128))),
        run(SoftwareNds::new(config_with_cache(0))),
    );
}

#[test]
fn hardware_nds_outcomes_identical_with_cache_on_and_off() {
    assert_invariant(
        run(HardwareNds::new(config_with_cache(128))),
        run(HardwareNds::new(config_with_cache(0))),
    );
}

#[test]
fn baseline_outcomes_identical_with_cache_on_and_off() {
    assert_invariant(
        run(BaselineSystem::new(config_with_cache(128))),
        run(BaselineSystem::new(config_with_cache(0))),
    );
}

#[test]
fn oracle_outcomes_identical_with_cache_on_and_off() {
    assert_invariant(
        run(OracleSystem::with_tile(
            config_with_cache(128),
            vec![64, 64],
        )),
        run(OracleSystem::with_tile(config_with_cache(0), vec![64, 64])),
    );
}

/// `read` and `read_into` are the same modeled operation: identical metrics,
/// identical bytes, on every architecture.
#[test]
fn read_into_matches_read_on_every_architecture() {
    fn check<S: StorageFrontEnd>(mut sys: S) {
        let shape = Shape::new([N, N]);
        let id = sys
            .create_dataset(shape.clone(), ElementType::F32)
            .expect("create");
        let bytes: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
        sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
            .expect("write");
        let mut buf = Vec::new();
        for (coord, sub) in sweep() {
            let out = sys.read(id, &shape, &coord, &sub).expect("read");
            let metrics = sys
                .read_into(id, &shape, &coord, &sub, &mut buf)
                .expect("read_into");
            assert_eq!(buf, out.data, "{}: bytes diverge", sys.name());
            assert_eq!(metrics, out.metrics(), "{}: metrics diverge", sys.name());
        }
    }
    let config = SystemConfig::small_test();
    check(BaselineSystem::new(config.clone()));
    check(SoftwareNds::new(config.clone()));
    check(HardwareNds::new(config.clone()));
    check(OracleSystem::with_tile(config, vec![64, 64]));
}
