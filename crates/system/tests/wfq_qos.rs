//! QoS properties of the multi-tenant traffic engine: work conservation,
//! per-tenant depth limits, no starvation, and achieved-vs-configured
//! WFQ throughput shares — checked over randomized tenant populations
//! (proptest) and asserted exactly on the weighted saturation scenario.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_system::{
    Arrival, BaselineSystem, OpKind, SystemConfig, TenantOp, TenantSet, TenantSpec, TrafficEngine,
};
use proptest::prelude::*;

/// Equal-cost op list: every op reads the same-size row panel (8×64 f32 =
/// 2 KiB), so WFQ service counts map 1:1 onto byte shares.
fn uniform_ops(tenant: u32) -> Vec<TenantOp> {
    (0..4u64)
        .map(|i| TenantOp {
            kind: OpKind::Read,
            dataset: 0,
            coord: vec![(u64::from(tenant) + i) % 8, 0],
            sub_dims: vec![8, 64],
        })
        .collect()
}

fn closed_spec(tenant: u32, weight: u64, depth: u32, total_ops: u64) -> TenantSpec {
    TenantSpec {
        weight,
        depth,
        arrival: Arrival::Closed {
            outstanding: depth.max(1),
        },
        datasets: vec![(Shape::new([64, 64]), ElementType::F32)],
        ops: uniform_ops(tenant),
        total_ops,
    }
}

fn run_engine(set: &TenantSet) -> TrafficEngine<BaselineSystem> {
    let sys = BaselineSystem::new(SystemConfig::small_test());
    let mut engine = TrafficEngine::new(sys, set).expect("setup");
    engine.run().expect("run");
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized closed tenant populations: every tenant finishes every
    /// operation (no starvation), the admitted-depth high-water mark never
    /// exceeds the configured limit, and the device is work-conserving —
    /// it never idles while an admitted operation is waiting.
    #[test]
    fn closed_populations_complete_within_limits(
        weights in prop::collection::vec(1u64..6, 2..5),
        depth in 1u32..4,
        total_ops in 6u64..14,
    ) {
        let mut set = TenantSet::new(9 + depth as u64);
        for (t, &w) in weights.iter().enumerate() {
            set = set.with_tenant(closed_spec(t as u32, w, depth, total_ops));
        }
        let engine = run_engine(&set);

        // No starvation: every tenant completed its full run.
        let mut per_tenant = vec![0u64; weights.len()];
        for c in engine.completions() {
            per_tenant[c.tenant as usize] += 1;
            prop_assert!(c.data_ok, "tenant {} read bad bytes", c.tenant);
        }
        prop_assert_eq!(per_tenant, vec![total_ops; weights.len()]);

        // Depth limits hold at the high-water mark.
        for t in 0..weights.len() as u32 {
            prop_assert!(
                engine.max_outstanding(t) <= depth,
                "tenant {t} exceeded depth {depth}: {}",
                engine.max_outstanding(t)
            );
        }

        // Work conservation: a service gap implies nothing was admitted
        // (admitted ≤ end of gap) during that gap.
        let completions = engine.completions();
        for pair in completions.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            prop_assert!(next.started >= prev.finished, "device double-booked");
            if next.started > prev.finished {
                let idle_violation = completions.iter().any(|c| {
                    c.admitted <= prev.finished && c.started >= next.started && c != next
                });
                prop_assert!(
                    !idle_violation,
                    "device idled from {:?} to {:?} with admitted work queued",
                    prev.finished,
                    next.started
                );
            }
        }
    }
}

#[test]
fn achieved_shares_track_weights_at_saturation() {
    // Three always-backlogged tenants with weights 1:2:4 on equal-cost
    // ops. Inside the saturated window — up to the instant the first
    // tenant finishes its run — every tenant's byte share must be within
    // 10% relative error of its configured weight share.
    let weights = [1u64, 2, 4];
    let total_ops = 128u64;
    let mut set = TenantSet::new(77);
    for (t, &w) in weights.iter().enumerate() {
        set = set.with_tenant(closed_spec(t as u32, w, 4, total_ops));
    }
    let engine = run_engine(&set);

    let horizon = (0..weights.len() as u32)
        .map(|t| {
            engine
                .completions()
                .iter()
                .filter(|c| c.tenant == t)
                .map(|c| c.finished)
                .max()
                .expect("tenant completed something")
        })
        .min()
        .expect("three tenants");
    let mut served = vec![0u64; weights.len()];
    for c in engine.completions() {
        if c.finished <= horizon {
            served[c.tenant as usize] += c.bytes;
        }
    }
    let total: u64 = served.iter().sum();
    let weight_sum: u64 = weights.iter().sum();
    assert!(total > 0);
    for (t, &w) in weights.iter().enumerate() {
        let achieved_milli = served[t] * 1000 / total;
        let configured_milli = w * 1000 / weight_sum;
        let err_milli = achieved_milli.abs_diff(configured_milli);
        assert!(
            err_milli * 10 <= configured_milli,
            "tenant {t}: achieved {achieved_milli}m vs configured {configured_milli}m \
             exceeds 10% relative error"
        );
    }
}

#[test]
fn open_arrivals_respect_depth_and_order() {
    // Open tenants with a tight gap saturate; with a huge gap the engine
    // must still serve every op exactly once, in nondecreasing start
    // order, without exceeding depth 2.
    for gap_ns in [200u64, 2_000_000] {
        let mut set = TenantSet::new(5);
        for t in 0..3u32 {
            set = set.with_tenant(TenantSpec {
                weight: 1,
                depth: 2,
                arrival: Arrival::Open {
                    mean_gap: nds_sim::SimDuration::from_nanos(gap_ns),
                },
                datasets: vec![(Shape::new([64, 64]), ElementType::F32)],
                ops: uniform_ops(t),
                total_ops: 10,
            });
        }
        let engine = run_engine(&set);
        assert_eq!(engine.completions().len(), 30);
        for t in 0..3 {
            assert!(engine.max_outstanding(t) <= 2);
        }
        let mut prev = None;
        for c in engine.completions() {
            assert!(c.admitted >= c.arrived, "admitted before arrival");
            assert!(c.started >= c.admitted, "started before admission");
            if let Some(p) = prev {
                assert!(c.started >= p, "service order regressed");
            }
            prev = Some(c.started);
        }
    }
}
