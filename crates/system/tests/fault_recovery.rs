//! Fault-recovery behavior of the system architectures: exhausted retry
//! budgets surface as *typed* errors (never panics), permanent program
//! failures remap onto fresh blocks without losing acknowledged data, and
//! read-disturb pressure triggers preventive migration that the application
//! never observes.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::testing::FlakyBackend;
use nds_core::{DeviceSpec, ElementType, NdsError, Shape, Stl, StlConfig};
use nds_faults::FaultConfig;
use nds_flash::FlashError;
use nds_system::{
    BaselineSystem, HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig, SystemError,
};

fn checkered(n: u64) -> Vec<u8> {
    (0..n * n * 4).map(|i| (i % 251) as u8).collect()
}

fn write_full(sys: &mut dyn StorageFrontEnd, n: u64, data: &[u8]) -> nds_system::DatasetId {
    let shape = Shape::new([n, n]);
    let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
    sys.write(id, &shape, &[0, 0], &[n, n], data).unwrap();
    id
}

#[test]
fn exhausted_link_budget_is_a_typed_error_on_every_architecture() {
    // Every link command faults and there are no retransmissions left.
    let faults = FaultConfig {
        seed: 7,
        link_fault_rate: 1.0,
        link_retry_budget: 0,
        ..FaultConfig::disabled()
    };
    let config = SystemConfig::small_test().with_faults(faults);
    let shape = Shape::new([32, 32]);
    let data = vec![5u8; 32 * 32 * 4];
    let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config)),
    ];
    for sys in &mut systems {
        let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
        let err = sys
            .write(id, &shape, &[0, 0], &[32, 32], &data)
            .expect_err("zero link budget cannot complete a transfer");
        assert!(
            matches!(err, SystemError::Link(_)),
            "{}: expected a link error, got {err}",
            sys.name()
        );
    }
}

#[test]
fn exhausted_read_budget_is_a_typed_flash_error() {
    // Every media read faults beyond a zero retry budget; programs and the
    // link stay healthy so the data lands intact.
    let faults = FaultConfig {
        seed: 21,
        media_read_rate: 1.0,
        read_retry_budget: 0,
        ..FaultConfig::disabled()
    };
    let config = SystemConfig::small_test().with_faults(faults);
    let n = 32;
    let shape = Shape::new([n, n]);
    let data = checkered(n);
    let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config)),
    ];
    for sys in &mut systems {
        let id = write_full(sys.as_mut(), n, &data);
        let err = sys
            .read(id, &shape, &[0, 0], &[n, n])
            .expect_err("unrecoverable ECC failure must surface");
        assert!(
            matches!(err, SystemError::Flash(FlashError::ReadUnrecoverable(_))),
            "{}: expected an unrecoverable-read error, got {err}",
            sys.name()
        );
    }
}

#[test]
fn permanent_program_failures_remap_without_losing_data() {
    // Every logical write draws one permanent program failure; recovery
    // retires the block and re-places the payload on a fresh page.
    let faults = FaultConfig {
        seed: 3,
        media_program_rate: 1.0,
        ..FaultConfig::disabled()
    };
    let config = SystemConfig::small_test().with_faults(faults);
    let n = 32;
    let shape = Shape::new([n, n]);
    let data = checkered(n);
    let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config)),
    ];
    for sys in &mut systems {
        let id = write_full(sys.as_mut(), n, &data);
        let r = sys.read(id, &shape, &[0, 0], &[n, n]).unwrap();
        assert_eq!(r.data, data, "{}: remapped data must survive", sys.name());
        let stats = sys.stats();
        assert!(
            stats.get("blocks.retired") > 0,
            "{}: program faults must retire blocks",
            sys.name()
        );
        assert_eq!(
            stats.get("faults.injected"),
            stats.get("faults.recovered"),
            "{}: every program fault must be recovered",
            sys.name()
        );
        assert!(stats.get("retries.flash") > 0, "{}", sys.name());
    }
}

#[test]
fn read_disturb_pressure_migrates_preventively_and_invisibly() {
    // No ECC faults — only disturb accounting, with a limit low enough that
    // repeated tile reads push blocks over it.
    let faults = FaultConfig {
        seed: 9,
        read_disturb_limit: 6,
        ..FaultConfig::disabled()
    };
    let config = SystemConfig::small_test().with_faults(faults);
    let n = 64;
    let shape = Shape::new([n, n]);
    let data = checkered(n);
    let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config)),
    ];
    for sys in &mut systems {
        let id = write_full(sys.as_mut(), n, &data);
        for _ in 0..12 {
            let r = sys.read(id, &shape, &[1, 1], &[16, 16]).unwrap();
            assert_eq!(r.bytes, 16 * 16 * 4);
        }
        let r = sys.read(id, &shape, &[0, 0], &[n, n]).unwrap();
        assert_eq!(r.data, data, "{}: migration must be invisible", sys.name());
        assert!(
            sys.stats().get("faults.disturb_migrations") > 0,
            "{}: the disturb limit must have tripped",
            sys.name()
        );
    }
}

#[test]
fn fault_counters_use_the_documented_names() {
    let faults = FaultConfig::with_rate(42, 0.2);
    let config = SystemConfig::small_test().with_faults(faults);
    let n = 64;
    let data = checkered(n);
    let mut sys = SoftwareNds::new(config);
    let id = write_full(&mut sys, n, &data);
    let shape = Shape::new([n, n]);
    for t in 0..4 {
        sys.read(id, &shape, &[t, t], &[16, 16]).unwrap();
    }
    let stats = sys.stats();
    assert!(stats.get("faults.injected") > 0);
    assert_eq!(stats.get("faults.injected"), stats.get("faults.recovered"));
    // Budgets default to 4 and severities cap at 4, so retries appear
    // whenever faults do.
    assert!(stats.get("retries.flash") + stats.get("retries.link") > 0);
}

#[test]
fn shared_flaky_backend_covers_the_host_resident_stl() {
    // The reusable `nds_core::testing` double drives the same
    // degrade-cleanly contract from outside the core crate: a mid-write
    // allocation failure is typed and acknowledged data survives.
    let spec = DeviceSpec::new(4, 2, 512);
    let mut stl = Stl::new(
        FlakyBackend::with_alloc_budget(spec, 1024, 40),
        StlConfig::default(),
    );
    let shape = Shape::new([64, 64]);
    let data: Vec<u8> = (0..64 * 64 * 4).map(|i| (i % 251) as u8).collect();
    let a = stl.create_space(shape.clone(), ElementType::F32).unwrap();
    stl.write(a, &shape, &[0, 0], &[64, 64], &data).unwrap();
    let b = stl.create_space(shape.clone(), ElementType::F32).unwrap();
    let err = stl
        .write(b, &shape, &[0, 0], &[64, 64], &data)
        .expect_err("budget exhausted mid-write");
    assert!(matches!(err, NdsError::DeviceFull { .. }));
    let (out, _) = stl.read(a, &shape, &[0, 0], &[64, 64]).unwrap();
    assert_eq!(out, data);
}
