//! Differential determinism suite for the multi-tenant traffic engine.
//!
//! The engine's contract is that a run is a pure function of
//! `(TenantSet, SystemConfig)`: same tenant set and seed ⇒ byte-identical
//! completion journal, engine report, and causal trace — across repeated
//! runs, across observability settings (the engine report is built only
//! from always-on accounting), and under an active fault plan (faults are
//! drawn from their own seeded streams). A single tenant driven through
//! the engine must also be schedule-identical to the same operations
//! replayed directly on the front-end.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nds_core::{ElementType, Shape};
use nds_faults::FaultConfig;
use nds_sim::ObsConfig;
use nds_system::{
    tenant_pattern_byte, Arrival, HardwareNds, OpKind, SoftwareNds, StorageFrontEnd, SystemConfig,
    TenantOp, TenantSet, TenantSpec, TrafficEngine,
};

const SEED: u64 = 2026;

/// A small mixed open/closed tenant set over 64×64 f32 datasets — the
/// differential suite's canonical traffic, built by hand so this crate's
/// tests stay independent of `nds-workloads`.
fn mixed_set(tenants: u32, ops_per_tenant: u64) -> TenantSet {
    let mut set = TenantSet::new(SEED);
    for t in 0..tenants {
        let arrival = if t % 2 == 0 {
            Arrival::Closed { outstanding: 3 }
        } else {
            Arrival::Open {
                mean_gap: nds_sim::SimDuration::from_micros(2),
            }
        };
        set = set.with_tenant(TenantSpec {
            weight: 1 + u64::from(t % 3),
            depth: 3,
            arrival,
            datasets: vec![(Shape::new([64, 64]), ElementType::F32)],
            ops: ops_mix(t),
            total_ops: ops_per_tenant,
        });
    }
    set
}

/// Four-op mix the engine cycles: row panel read, tile write, tile read,
/// column panel read — varied per tenant so interleavings differ.
fn ops_mix(tenant: u32) -> Vec<TenantOp> {
    let r = u64::from(tenant);
    vec![
        TenantOp {
            kind: OpKind::Read,
            dataset: 0,
            coord: vec![r % 8, 0],
            sub_dims: vec![8, 64],
        },
        TenantOp {
            kind: OpKind::Write,
            dataset: 0,
            coord: vec![r % 4, (r + 1) % 4],
            sub_dims: vec![16, 16],
        },
        TenantOp {
            kind: OpKind::Read,
            dataset: 0,
            coord: vec![(r + 2) % 4, r % 4],
            sub_dims: vec![16, 16],
        },
        TenantOp {
            kind: OpKind::Read,
            dataset: 0,
            coord: vec![0, r % 8],
            sub_dims: vec![64, 8],
        },
    ]
}

/// Runs the set on a fresh hardware-NDS system and returns the run's
/// three determinism artifacts: journal text, engine-report JSON, and
/// the tenant-attributed trace export (when tracing was on).
fn run_artifacts(
    config: &SystemConfig,
    set: &TenantSet,
) -> (String, String, Option<nds_sim::TraceExport>) {
    let sys = HardwareNds::new(config.clone());
    let mut engine = TrafficEngine::new(sys, set).expect("setup");
    engine.run().expect("run");
    assert!(
        engine.completions().iter().all(|c| c.data_ok),
        "pattern verification failed"
    );
    (
        engine.journal_lines(),
        engine.report().to_json(),
        engine.trace_export(),
    )
}

#[test]
fn repeated_runs_are_byte_identical() {
    let set = mixed_set(4, 12);
    let config = SystemConfig::small_test().with_observability(ObsConfig::traced());
    let (journal_a, report_a, trace_a) = run_artifacts(&config, &set);
    let (journal_b, report_b, trace_b) = run_artifacts(&config, &set);
    assert_eq!(journal_a, journal_b, "journal diverged across runs");
    assert_eq!(report_a, report_b, "report diverged across runs");
    assert!(trace_a.is_some(), "tracing was on");
    assert_eq!(trace_a, trace_b, "trace diverged across runs");
}

#[test]
fn engine_artifacts_are_observability_invariant() {
    let set = mixed_set(4, 12);
    let mut baseline = None;
    for obs in [
        ObsConfig::disabled(),
        ObsConfig::full(),
        ObsConfig::traced(),
    ] {
        let config = SystemConfig::small_test().with_observability(obs);
        let (journal, report, _) = run_artifacts(&config, &set);
        match &baseline {
            None => baseline = Some((journal, report)),
            Some((j, r)) => {
                assert_eq!(&journal, j, "journal varies with observability");
                assert_eq!(&report, r, "engine report varies with observability");
            }
        }
    }
}

#[test]
fn determinism_holds_under_an_active_fault_plan() {
    let set = mixed_set(4, 12);
    let faults = FaultConfig::with_rate(31, 0.05);
    assert!(faults.is_active());
    let config = SystemConfig::small_test()
        .with_faults(faults)
        .with_observability(ObsConfig::full());
    let (journal_a, report_a, _) = run_artifacts(&config, &set);
    let (journal_b, report_b, _) = run_artifacts(&config, &set);
    assert_eq!(journal_a, journal_b, "journal diverged under faults");
    assert_eq!(report_a, report_b, "report diverged under faults");
    // Faults must actually change the schedule relative to a clean run —
    // otherwise this test is vacuous.
    let clean = SystemConfig::small_test().with_observability(ObsConfig::full());
    let (clean_journal, _, _) = run_artifacts(&clean, &set);
    assert_ne!(
        journal_a, clean_journal,
        "fault plan did not perturb the run (retries should add latency)"
    );
}

#[test]
fn single_tenant_engine_matches_direct_replay() {
    // One closed tenant with depth 1 is a plain serial op stream: the
    // engine must produce exactly the latencies the front-end produces
    // when the same operations are replayed directly.
    let ops = ops_mix(0);
    let total_ops = 8u64;
    let set = TenantSet::new(SEED).with_tenant(TenantSpec {
        weight: 1,
        depth: 1,
        arrival: Arrival::Closed { outstanding: 1 },
        datasets: vec![(Shape::new([64, 64]), ElementType::F32)],
        ops: ops.clone(),
        total_ops,
    });
    let config = SystemConfig::small_test();
    let sys = SoftwareNds::new(config.clone());
    let mut engine = TrafficEngine::new(sys, &set).expect("setup");
    engine.run().expect("run");
    let engine_latencies: Vec<u64> = engine
        .completions()
        .iter()
        .map(|c| c.finished.saturating_since(c.started).as_nanos())
        .collect();
    assert_eq!(engine_latencies.len(), total_ops as usize);

    // Direct replay: identical setup write, then the same cycled ops.
    let mut direct = SoftwareNds::new(config);
    let shape = Shape::new([64, 64]);
    let id = direct
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let full: Vec<u8> = (0..64 * 64 * 4)
        .map(|i| tenant_pattern_byte(SEED, 0, 0, i))
        .collect();
    direct
        .write(id, &shape, &[0, 0], &[64, 64], &full)
        .expect("setup write");
    let mut direct_latencies = Vec::new();
    let mut buf = Vec::new();
    for i in 0..total_ops {
        let op = &ops[(i % ops.len() as u64) as usize];
        let latency = match op.kind {
            OpKind::Read => direct
                .read_into(id, &shape, &op.coord, &op.sub_dims, &mut buf)
                .expect("read")
                .latency()
                .as_nanos(),
            OpKind::Write => {
                let volume: u64 = op.sub_dims.iter().product();
                let data: Vec<u8> = (0..volume * 4).map(|j| (j % 251) as u8).collect();
                direct
                    .write(id, &shape, &op.coord, &op.sub_dims, &data)
                    .expect("write")
                    .latency
                    .as_nanos()
            }
        };
        direct_latencies.push(latency);
    }
    assert_eq!(
        engine_latencies, direct_latencies,
        "single tenant through the engine is not schedule-identical to a direct run"
    );
}
