//! The ten evaluation workloads of the NDS paper (Table 1), implemented with
//! *functional* kernels over the four system architectures.
//!
//! Each workload follows the paper's methodology (§6): the compute kernel is
//! identical across architectures; only the I/O functions differ, via the
//! shared [`nds_system::StorageFrontEnd`] trait. Datasets are synthesized by
//! seeded generators mirroring the artifact's generators (appendix A.3.4),
//! kernels compute real answers that tests validate against in-memory
//! references, and execution is pipelined block-by-block exactly as §6.2
//! describes — so both Fig. 10(a)'s end-to-end latency and Fig. 10(b)'s
//! kernel idle time fall out of the schedule.
//!
//! | Workload | Category | Data | Kernel |
//! |---|---|---|---|
//! | [`Bfs`] | graph traversal | 2-D adjacency | 1-D row scans |
//! | [`Sssp`] | graph traversal (Bellman-Ford) | 2-D weights | row panels |
//! | [`Gemm`] | linear algebra | 2-D matrices | 2-D tiles |
//! | [`Hotspot`] | physics simulation | 2-D grids | 2-D tiles + halo |
//! | [`KMeans`] | data mining | 2-D points | 1-D rows |
//! | [`Knn`] | data mining | 2-D points (shared with KMeans) | 1-D rows |
//! | [`PageRank`] | graph | 2-D adjacency | row panels |
//! | [`Conv2d`] | image processing | 2-D image | 2-D tiles + halo |
//! | [`Ttv`] | tensor algebra | 3-D tensor | 2-D slices |
//! | [`Tc`] | tensor algebra | 3-D tensor (shared with TTV) | 2-D slices |
//!
//! # Example
//!
//! ```
//! use nds_system::{HardwareNds, SystemConfig};
//! use nds_workloads::{Gemm, Workload, WorkloadParams};
//!
//! # fn main() -> Result<(), nds_system::SystemError> {
//! let params = WorkloadParams::tiny_test(7);
//! let gemm = Gemm::new(params);
//! let mut sys = HardwareNds::new(SystemConfig::small_test());
//! let run = gemm.run(&mut sys)?;
//! assert_eq!(run.checksum, gemm.reference_checksum());
//! assert!(run.total.as_nanos() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod data;
mod driver;
pub mod kernels;
mod params;
pub mod tenants;
mod workloads;

pub use driver::{stream_phase, PhaseOutcome, WorkloadRun};
pub use params::WorkloadParams;
pub use workloads::{
    all_workloads, Bfs, Conv2d, Gemm, Hotspot, KMeans, Knn, PageRank, Sssp, Tc, Ttv, Workload,
};
