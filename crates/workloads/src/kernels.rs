//! Reference compute kernels.
//!
//! These are the *functional* kernels the workloads execute on every
//! architecture: plain, deterministic Rust implementations of the operations
//! the paper offloads to GPUs. Their timing comes from the accelerator model
//! (`nds-accel`); their outputs are what the tests validate.

/// `c += a × b` for `t × t` row-major f32 tiles (x fastest: `a[x + t*y]`).
///
/// # Panics
///
/// Panics if any slice is not `t²` long.
pub fn gemm_tile(t: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), t * t);
    assert_eq!(b.len(), t * t);
    assert_eq!(c.len(), t * t);
    // ikj loop order keeps the inner loop streaming over b and c rows.
    for i in 0..t {
        for k in 0..t {
            let aik = a[k + t * i];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[t * k..t * k + t];
            let crow = &mut c[t * i..t * i + t];
            for j in 0..t {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// One BFS expansion: given a node's adjacency row and its level, marks
/// unvisited neighbors with `level + 1`. Returns the newly discovered nodes.
pub fn bfs_expand(row: &[u8], level: u32, levels: &mut [u32]) -> Vec<u64> {
    let mut discovered = Vec::new();
    for (j, &edge) in row.iter().enumerate() {
        if edge != 0 && levels[j] == u32::MAX {
            levels[j] = level + 1;
            discovered.push(j as u64);
        }
    }
    discovered
}

/// One Bellman-Ford relaxation sweep over a panel of weight rows
/// (`rows × n`, row `r` holds edges out of node `base + r`). Returns true if
/// any distance improved.
pub fn bellman_ford_panel(panel: &[i32], n: usize, base: usize, dist: &mut [i64]) -> bool {
    let rows = panel.len() / n;
    let mut changed = false;
    for r in 0..rows {
        let du = dist[base + r];
        if du == i64::MAX {
            continue;
        }
        for j in 0..n {
            let w = panel[r * n + j];
            if w == i32::MAX {
                continue;
            }
            let candidate = du + w as i64;
            if candidate < dist[j] {
                dist[j] = candidate;
                changed = true;
            }
        }
    }
    changed
}

/// One Jacobi step of the Hotspot thermal stencil on a `t × t` tile with an
/// explicit one-cell halo (halo cells replicate the edge when absent).
/// `temp`/`power` are `t²`; halos are the four edge strips of the
/// neighboring tiles (length `t`, or empty at grid borders).
#[allow(clippy::too_many_arguments)]
pub fn hotspot_tile(
    t: usize,
    temp: &[f32],
    power: &[f32],
    north: &[f32],
    south: &[f32],
    west: &[f32],
    east: &[f32],
    out: &mut [f32],
) {
    assert_eq!(temp.len(), t * t);
    assert_eq!(out.len(), t * t);
    let at = |x: isize, y: isize| -> f32 {
        if y < 0 {
            if north.is_empty() {
                temp[x as usize]
            } else {
                north[x as usize]
            }
        } else if y >= t as isize {
            if south.is_empty() {
                temp[x as usize + t * (t - 1)]
            } else {
                south[x as usize]
            }
        } else if x < 0 {
            if west.is_empty() {
                temp[t * y as usize]
            } else {
                west[y as usize]
            }
        } else if x >= t as isize {
            if east.is_empty() {
                temp[(t - 1) + t * y as usize]
            } else {
                east[y as usize]
            }
        } else {
            temp[x as usize + t * y as usize]
        }
    };
    const K: f32 = 0.2;
    for y in 0..t {
        for x in 0..t {
            let center = temp[x + t * y];
            let laplacian = at(x as isize - 1, y as isize)
                + at(x as isize + 1, y as isize)
                + at(x as isize, y as isize - 1)
                + at(x as isize, y as isize + 1)
                - 4.0 * center;
            out[x + t * y] = center + K * laplacian + 0.05 * power[x + t * y];
        }
    }
}

/// Accumulates partial squared distances for one `points × attrs` tile
/// (attributes fastest) against the matching attribute block of `k`
/// centroids (`k × attrs`): `dist_acc[r·k + c] += ‖tile[r] − centroid[c]‖²`
/// over this block's attributes. Summing over all attribute blocks yields
/// the full distances — how a blocked out-of-core K-Means/KNN consumes 2-D
/// sub-blocks (§6.2).
pub fn sqdist_tile(tile: &[f32], attrs: usize, centroid_block: &[f32], dist_acc: &mut [f32]) {
    let k = centroid_block.len() / attrs;
    let points = tile.len() / attrs;
    debug_assert_eq!(dist_acc.len(), points * k);
    for r in 0..points {
        let point = &tile[r * attrs..(r + 1) * attrs];
        for c in 0..k {
            let centroid = &centroid_block[c * attrs..(c + 1) * attrs];
            let mut acc = 0.0f32;
            for j in 0..attrs {
                let d = point[j] - centroid[j];
                acc += d * d;
            }
            dist_acc[r * k + c] += acc;
        }
    }
}

/// One Bellman-Ford relaxation over a `rows × cols` weight tile whose rows
/// are nodes `base_row..` and columns nodes `base_col..`. Returns true if
/// any distance improved.
pub fn bellman_ford_tile(
    tile: &[i32],
    cols: usize,
    base_row: usize,
    base_col: usize,
    dist: &mut [i64],
) -> bool {
    let rows = tile.len() / cols;
    let mut changed = false;
    for r in 0..rows {
        let du = dist[base_row + r];
        if du == i64::MAX {
            continue;
        }
        for j in 0..cols {
            let w = tile[r * cols + j];
            if w == i32::MAX {
                continue;
            }
            let candidate = du + w as i64;
            if candidate < dist[base_col + j] {
                dist[base_col + j] = candidate;
                changed = true;
            }
        }
    }
    changed
}

/// One PageRank accumulation over a `rows × cols` link tile:
/// `next[base_col + j] += rank[base_row + r] · tile[r][j]`.
pub fn pagerank_tile(
    tile: &[f32],
    cols: usize,
    base_row: usize,
    base_col: usize,
    rank: &[f32],
    next: &mut [f64],
) {
    let rows = tile.len() / cols;
    for r in 0..rows {
        let share = rank[base_row + r];
        if share == 0.0 {
            continue;
        }
        for j in 0..cols {
            let l = tile[r * cols + j];
            if l != 0.0 {
                next[base_col + j] += (share * l) as f64;
            }
        }
    }
}

/// Assigns each point of a row panel (`rows × d`) to its nearest centroid
/// (`k × d`), accumulating per-cluster sums and counts for the update step.
pub fn kmeans_assign(
    panel: &[f32],
    d: usize,
    centroids: &[f32],
    sums: &mut [f64],
    counts: &mut [u64],
) {
    let k = centroids.len() / d;
    for point in panel.chunks_exact(d) {
        let mut best = 0usize;
        let mut best_dist = f32::INFINITY;
        for (c, centroid) in centroids.chunks_exact(d).enumerate() {
            let dist: f32 = point
                .iter()
                .zip(centroid)
                .map(|(p, q)| (p - q) * (p - q))
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        counts[best] += 1;
        for (s, p) in sums[best * d..best * d + d].iter_mut().zip(point) {
            *s += *p as f64;
        }
    }
    let _ = k;
}

/// Finalizes centroids from accumulated sums/counts.
pub fn kmeans_update(sums: &[f64], counts: &[u64], d: usize, centroids: &mut [f32]) {
    for (c, centroid) in centroids.chunks_exact_mut(d).enumerate() {
        if counts[c] == 0 {
            continue;
        }
        for (j, v) in centroid.iter_mut().enumerate() {
            *v = (sums[c * d + j] / counts[c] as f64) as f32;
        }
    }
}

/// Scans a row panel of points for the k nearest to `query`, merging into a
/// running best list of `(distance, index)` sorted ascending.
pub fn knn_scan(
    panel: &[f32],
    d: usize,
    base_index: u64,
    query: &[f32],
    k: usize,
    best: &mut Vec<(f32, u64)>,
) {
    for (r, point) in panel.chunks_exact(d).enumerate() {
        let dist: f32 = point
            .iter()
            .zip(query)
            .map(|(p, q)| (p - q) * (p - q))
            .sum();
        let idx = base_index + r as u64;
        if best.len() < k {
            best.push((dist, idx));
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        } else if dist < {
            #[allow(clippy::expect_used)] // the branch above guarantees best is non-empty
            best.last().expect("non-empty").0
        } {
            best.pop();
            best.push((dist, idx));
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
    }
}

/// One PageRank accumulation over a panel of link rows (`rows × n`, row `r`
/// = outbound shares of node `base + r`): `next[j] += rank[base+r] · L[r][j]`.
pub fn pagerank_panel(panel: &[f32], n: usize, base: usize, rank: &[f32], next: &mut [f64]) {
    let rows = panel.len() / n;
    for r in 0..rows {
        let share = rank[base + r];
        if share == 0.0 {
            continue;
        }
        for j in 0..n {
            let l = panel[r * n + j];
            if l != 0.0 {
                next[j] += (share * l) as f64;
            }
        }
    }
}

/// Separable 2-D convolution (radius-`r` box filter hori+vert) on a `t × t`
/// tile with edge replication inside the tile.
pub fn conv2d_tile(t: usize, r: usize, tile: &[f32], out: &mut [f32]) {
    assert_eq!(tile.len(), t * t);
    assert_eq!(out.len(), t * t);
    let norm = 1.0 / (2 * r + 1) as f32;
    let mut tmp = vec![0.0f32; t * t];
    for y in 0..t {
        for x in 0..t {
            let mut acc = 0.0;
            for dx in -(r as isize)..=(r as isize) {
                let sx = (x as isize + dx).clamp(0, t as isize - 1) as usize;
                acc += tile[sx + t * y];
            }
            tmp[x + t * y] = acc * norm;
        }
    }
    for y in 0..t {
        for x in 0..t {
            let mut acc = 0.0;
            for dy in -(r as isize)..=(r as isize) {
                let sy = (y as isize + dy).clamp(0, t as isize - 1) as usize;
                acc += tmp[x + t * sy];
            }
            out[x + t * y] = acc * norm;
        }
    }
}

/// Tensor-times-vector over the slowest mode: given slice `s` of a `side³`
/// tensor (a `side²` matrix) and vector weight `v[s]`, accumulates
/// `out += v[s] · slice`.
pub fn ttv_slice(slice: &[f32], weight: f32, out: &mut [f32]) {
    for (o, x) in out.iter_mut().zip(slice) {
        *o += weight * x;
    }
}

/// Tensor contraction over the slowest mode: `out += a_slice × b_slice` as a
/// matrix product of two `t × t` slices (the paper's TC runs GEMM-shaped
/// kernels over tensor slices).
pub fn tc_slice(t: usize, a_slice: &[f32], b_slice: &[f32], out: &mut [f32]) {
    gemm_tile(t, a_slice, b_slice, out);
}

/// An order-insensitive checksum over f32 data (stable across architectures
/// that produce identical values in different visit orders).
pub fn checksum_f32(values: &[f32]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        // Quantize to tolerate nothing: runs are bit-deterministic, so a
        // plain bit mix is fine.
        acc = acc.wrapping_add((v.to_bits() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    acc
}

/// A checksum over integer sequences (BFS levels, SSSP distances, KNN ids).
pub fn checksum_u64(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = acc
            .wrapping_add(v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(7);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_tile_matches_naive() {
        let t = 8;
        let a: Vec<f32> = (0..t * t).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..t * t).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut c = vec![0.0f32; t * t];
        gemm_tile(t, &a, &b, &mut c);
        for i in 0..t {
            for j in 0..t {
                let expect: f32 = (0..t).map(|k| a[k + t * i] * b[j + t * k]).sum();
                assert_eq!(c[j + t * i], expect, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn bfs_expand_marks_levels() {
        let row = [0u8, 1, 0, 1];
        let mut levels = [0, u32::MAX, u32::MAX, 2];
        let found = bfs_expand(&row, 0, &mut levels);
        assert_eq!(found, vec![1]);
        assert_eq!(levels, [0, 1, u32::MAX, 2]);
    }

    #[test]
    fn bellman_ford_relaxes() {
        // 3-node line: 0 →(5) 1 →(2) 2.
        let n = 3;
        let inf = i32::MAX;
        let panel = [inf, 5, inf, inf, inf, 2, inf, inf, inf];
        let mut dist = [0i64, i64::MAX, i64::MAX];
        assert!(bellman_ford_panel(&panel, n, 0, &mut dist));
        assert_eq!(dist, [0, 5, 7]);
        assert!(!bellman_ford_panel(&panel, n, 0, &mut dist), "fixpoint");
    }

    #[test]
    fn hotspot_flat_tile_stays_flat() {
        let t = 4;
        let temp = vec![10.0f32; t * t];
        let power = vec![0.0f32; t * t];
        let mut out = vec![0.0f32; t * t];
        hotspot_tile(t, &temp, &power, &[], &[], &[], &[], &mut out);
        assert!(out.iter().all(|&v| (v - 10.0).abs() < 1e-6));
    }

    #[test]
    fn hotspot_uses_halo() {
        let t = 2;
        let temp = vec![0.0f32; 4];
        let power = vec![0.0f32; 4];
        let north = vec![40.0f32; 2];
        let mut out = vec![0.0f32; 4];
        hotspot_tile(t, &temp, &power, &north, &[], &[], &[], &mut out);
        assert!(out[0] > 0.0, "heat flows in from the north halo");
        assert_eq!(out[2], 0.0, "southern row unaffected in one step");
    }

    #[test]
    fn kmeans_assign_and_update() {
        let d = 2;
        // Two obvious clusters around (0,0) and (10,10).
        let panel = [0.0, 0.1, 0.1, 0.0, 10.0, 9.9, 9.9, 10.1];
        let centroids = vec![1.0, 1.0, 9.0, 9.0];
        let mut sums = vec![0.0f64; 4];
        let mut counts = vec![0u64; 2];
        kmeans_assign(&panel, d, &centroids, &mut sums, &mut counts);
        assert_eq!(counts, [2, 2]);
        let mut updated = centroids.clone();
        kmeans_update(&sums, &counts, d, &mut updated);
        assert!((updated[0] - 0.05).abs() < 1e-6);
        assert!((updated[2] - 9.95).abs() < 1e-6);
    }

    #[test]
    fn knn_keeps_k_nearest() {
        let d = 1;
        let panel = [5.0f32, 1.0, 3.0, 9.0];
        let query = [0.0f32];
        let mut best = Vec::new();
        knn_scan(&panel, d, 100, &query, 2, &mut best);
        let ids: Vec<u64> = best.iter().map(|&(_, i)| i).collect();
        assert_eq!(ids, vec![101, 102]);
    }

    #[test]
    fn pagerank_accumulates_shares() {
        let n = 2;
        let panel = [0.0f32, 1.0, 0.5, 0.5];
        let rank = [0.6f32, 0.4];
        let mut next = vec![0.0f64; 2];
        pagerank_panel(&panel, n, 0, &rank, &mut next);
        assert!((next[0] - 0.2).abs() < 1e-6);
        assert!((next[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn conv2d_preserves_constants() {
        let t = 8;
        let tile = vec![3.0f32; t * t];
        let mut out = vec![0.0f32; t * t];
        conv2d_tile(t, 2, &tile, &mut out);
        assert!(out.iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }

    #[test]
    fn ttv_weights_slices() {
        let slice = [1.0f32, 2.0, 3.0];
        let mut out = vec![1.0f32; 3];
        ttv_slice(&slice, 2.0, &mut out);
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn sqdist_tiles_compose_to_full_distance() {
        let d = 4;
        let point = [1.0f32, 2.0, 3.0, 4.0];
        let centroid = [0.0f32, 0.0, 1.0, 1.0];
        // Full distance in one tile…
        let mut full = vec![0.0f32; 1];
        sqdist_tile(&point, d, &centroid, &mut full);
        // …equals two half-tiles accumulated.
        let mut halves = vec![0.0f32; 1];
        sqdist_tile(&point[..2], 2, &centroid[..2], &mut halves);
        sqdist_tile(&point[2..], 2, &centroid[2..], &mut halves);
        assert_eq!(full, halves);
        assert_eq!(full[0], 1.0 + 4.0 + 4.0 + 9.0);
    }

    #[test]
    fn bellman_ford_tile_matches_panel() {
        let n = 4;
        let inf = i32::MAX;
        let w: Vec<i32> = vec![
            inf, 3, inf, 9, //
            inf, inf, 2, inf, //
            inf, inf, inf, 1, //
            inf, inf, inf, inf,
        ];
        let mut via_panel = vec![i64::MAX; n];
        via_panel[0] = 0;
        while bellman_ford_panel(&w, n, 0, &mut via_panel) {}
        let mut via_tiles = vec![i64::MAX; n];
        via_tiles[0] = 0;
        loop {
            let mut changed = false;
            for br in 0..2 {
                for bc in 0..2 {
                    let mut tile = Vec::new();
                    for r in 0..2 {
                        for c in 0..2 {
                            tile.push(w[(br * 2 + r) * n + bc * 2 + c]);
                        }
                    }
                    changed |= bellman_ford_tile(&tile, 2, br * 2, bc * 2, &mut via_tiles);
                }
            }
            if !changed {
                break;
            }
        }
        assert_eq!(via_panel, via_tiles);
    }

    #[test]
    fn pagerank_tile_matches_panel() {
        let n = 4;
        let links: Vec<f32> = (0..n * n).map(|i| (i % 3) as f32 * 0.1).collect();
        let rank = [0.1f32, 0.2, 0.3, 0.4];
        let mut via_panel = vec![0.0f64; n];
        pagerank_panel(&links, n, 0, &rank, &mut via_panel);
        let mut via_tiles = vec![0.0f64; n];
        for br in 0..2 {
            for bc in 0..2 {
                let mut tile = Vec::new();
                for r in 0..2 {
                    for c in 0..2 {
                        tile.push(links[(br * 2 + r) * n + bc * 2 + c]);
                    }
                }
                pagerank_tile(&tile, 2, br * 2, bc * 2, &rank, &mut via_tiles);
            }
        }
        for (a, b) in via_panel.iter().zip(&via_tiles) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn checksums_detect_changes() {
        let a = checksum_f32(&[1.0, 2.0, 3.0]);
        let b = checksum_f32(&[1.0, 2.0, 3.001]);
        assert_ne!(a, b);
        assert_eq!(a, checksum_f32(&[1.0, 2.0, 3.0]));
        assert_ne!(checksum_u64([1, 2, 3]), checksum_u64([3, 2, 1]));
    }
}
