//! Workload sizing parameters.

use serde::{Deserialize, Serialize};

/// Size/seed parameters shared by all workloads.
///
/// The paper evaluates 65,536² matrices and 2,048³ tensors — tens of
/// gigabytes that the authors stream from a 2 TB prototype SSD. The
/// reproduction keeps every *ratio* that drives the results (pages per row
/// vs. channels, kernel tile vs. building block, dataset vs. device-memory
/// capacity) and scales the absolute sizes so simulations finish in seconds;
/// `EXPERIMENTS.md` records the scale used for each figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Matrix side (elements) for 2-D workloads; tensor side for 3-D.
    pub n: u64,
    /// Kernel tile side (the compute kernel's sub-dimensionality).
    pub tile: u64,
    /// Iterations for iterative kernels (rounds, sweeps, power steps).
    pub iterations: usize,
    /// Divisor applied to the accelerator rate-curve optima so scaled-down
    /// kernel tiles sit at the paper's operating point (65,536-element
    /// matrices scaled to `n` give `65536 / n`).
    pub engine_scale: u64,
    /// Seed for dataset generation and STL placement.
    pub seed: u64,
}

impl WorkloadParams {
    /// Benchmark scale: 2048² matrices with 256² kernel tiles — 1/32 the
    /// paper's linear size, same tile-to-matrix ratio as its 8192²-of-65536²
    /// GEMM blocking, and the kernel tile equals the minimum 256² f32
    /// building block of the 32-channel prototype (tiles ≥ blocks, as in
    /// the paper).
    pub fn bench(seed: u64) -> Self {
        WorkloadParams {
            n: 2048,
            tile: 256,
            iterations: 2,
            engine_scale: 32,
            seed,
        }
    }

    /// The paper's full Table 1 scale: 65,536² matrices with 8,192² GEMM
    /// tiles. At f32 this is 16 GiB per matrix — runnable, but sized for a
    /// machine with tens of GB of RAM and patience; the benches default to
    /// [`WorkloadParams::bench`], which preserves every ratio at 1/32
    /// linear scale.
    pub fn paper(seed: u64) -> Self {
        WorkloadParams {
            n: 65536,
            tile: 8192,
            iterations: 2,
            engine_scale: 1,
            seed,
        }
    }

    /// Test scale: fast enough for debug-mode CI while still spanning
    /// multiple building blocks and tiles.
    pub fn tiny_test(seed: u64) -> Self {
        WorkloadParams {
            n: 256,
            tile: 64,
            iterations: 2,
            engine_scale: 256,
            seed,
        }
    }

    /// Number of tiles along one matrix side.
    pub fn tiles_per_side(&self) -> u64 {
        self.n / self.tile
    }

    /// Validates divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `tile` does not divide `n` or either is zero.
    pub fn validate(&self) {
        assert!(self.n > 0 && self.tile > 0, "sizes must be non-zero");
        assert!(
            self.n.is_multiple_of(self.tile),
            "tile {} must divide matrix side {}",
            self.tile,
            self.n
        );
        assert!(self.iterations > 0, "need at least one iteration");
        assert!(self.engine_scale > 0, "engine scale must be non-zero");
    }

    /// The Tensor-Core engine at this scale's operating point.
    pub fn tensor_engine(&self) -> nds_accel::ComputeEngine {
        nds_accel::ComputeEngine::tensor_cores().with_optimum_scaled(self.engine_scale)
    }

    /// The CUDA-core engine at this scale's operating point.
    pub fn cuda_engine(&self) -> nds_accel::ComputeEngine {
        nds_accel::ComputeEngine::cuda_cores().with_optimum_scaled(self.engine_scale)
    }

    /// The host-CPU engine at this scale's operating point.
    pub fn host_engine(&self) -> nds_accel::ComputeEngine {
        nds_accel::ComputeEngine::host_cpu().with_optimum_scaled(self.engine_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        WorkloadParams::bench(1).validate();
        WorkloadParams::tiny_test(1).validate();
        WorkloadParams::paper(1).validate();
        assert_eq!(WorkloadParams::bench(1).tiles_per_side(), 8);
        assert_eq!(WorkloadParams::tiny_test(1).tiles_per_side(), 4);
        assert_eq!(WorkloadParams::paper(1).tiles_per_side(), 8);
    }

    #[test]
    fn bench_preserves_paper_ratios() {
        let paper = WorkloadParams::paper(1);
        let bench = WorkloadParams::bench(1);
        // Same tile-to-matrix ratio, and the engine scale equals the linear
        // scale factor so kernels sit at the same operating point.
        assert_eq!(
            paper.n / paper.tile,
            bench.n / bench.tile,
            "blocking ratio must match"
        );
        assert_eq!(paper.n / bench.n, bench.engine_scale / paper.engine_scale);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_tile_rejected() {
        WorkloadParams {
            n: 100,
            tile: 32,
            iterations: 1,
            engine_scale: 1,
            seed: 0,
        }
        .validate();
    }
}
