//! Seeded workload mixes for the sharded cluster front-end.
//!
//! A cluster run is described by a flat list of [`ClusterOp`]s over one
//! shared dataset ([`cluster_dataset`]): Fig. 9-style row panels, tiles,
//! and column panels, each a read or a write with a per-op payload salt.
//! Everything is a pure function of the seed, so the same mix replayed
//! against a healthy cluster and a fault-plan cluster is the differential
//! pair the determinism checks diff.

use nds_core::{ElementType, Shape};

/// One operation of a cluster mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterOp {
    /// True for a write (with payload derived from `salt`), false for a
    /// read.
    pub write: bool,
    /// Partition coordinate in the canonical view.
    pub coord: Vec<u64>,
    /// Partition extents in the canonical view.
    pub sub_dims: Vec<u64>,
    /// Seed for the write payload ([`payload_byte`]); zero for reads.
    pub salt: u64,
}

/// The shared cluster dataset: a 64×64 `f32` matrix (16 KiB). With the
/// bench default of 24 shard rows the shards split 24/24/16, so tiles in
/// rows 16..32 and 40..56 straddle shard boundaries — the reassembly path
/// is exercised, not just per-shard pass-through.
pub fn cluster_dataset() -> (Shape, ElementType) {
    (Shape::new([64, 64]), ElementType::F32)
}

/// splitmix64-style finalizer (same construction as the traffic
/// engine's): the only source of variation in a mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic payload byte `i` of a write with `salt`.
pub fn payload_byte(salt: u64, i: u64) -> u8 {
    (mix(salt ^ mix(i)) & 0xff) as u8
}

/// A seeded command mix over [`cluster_dataset`]: row panels (8×64 in the
/// last dimension), 16×16 tiles, and column panels (64×8), read with
/// probability `read_pct`% and written otherwise. Writes carry a salt
/// derived from `(seed, op index)` so payloads are reproducible without
/// materializing them here.
pub fn cluster_mix(seed: u64, ops: usize, read_pct: u32) -> Vec<ClusterOp> {
    (0..ops as u64)
        .map(|i| {
            let h = mix(seed ^ 0xc1a5_7e50 ^ i);
            let write = h % 100 >= u64::from(read_pct.min(100));
            let (coord, sub_dims) = match (h >> 8) % 3 {
                0 => (vec![0, (h >> 16) % 8], vec![64, 8]),
                1 => (vec![(h >> 16) % 4, (h >> 24) % 4], vec![16, 16]),
                _ => (vec![(h >> 16) % 8, 0], vec![8, 64]),
            };
            ClusterOp {
                write,
                coord,
                sub_dims,
                salt: if write { mix(seed ^ 0x5a17 ^ i) } else { 0 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_in_bounds() {
        let a = cluster_mix(9, 64, 60);
        assert_eq!(a, cluster_mix(9, 64, 60));
        let (shape, _) = cluster_dataset();
        for op in &a {
            for ((&c, &s), &dim) in op
                .coord
                .iter()
                .zip(op.sub_dims.iter())
                .zip(shape.dims().iter())
            {
                assert!((c + 1) * s <= dim, "op out of bounds: {op:?}");
            }
        }
        assert!(a.iter().any(|op| op.write));
        assert!(a.iter().any(|op| !op.write));
        assert!(a.iter().filter(|op| op.write).all(|op| op.salt != 0));
    }

    #[test]
    fn mixes_differ_across_seeds() {
        assert_ne!(cluster_mix(1, 32, 60), cluster_mix(2, 32, 60));
    }

    #[test]
    fn payload_bytes_vary_with_salt_and_index() {
        let a: Vec<u8> = (0..64).map(|i| payload_byte(7, i)).collect();
        let b: Vec<u8> = (0..64).map(|i| payload_byte(8, i)).collect();
        assert_ne!(a, b);
        assert_eq!(a, (0..64).map(|i| payload_byte(7, i)).collect::<Vec<u8>>());
    }
}
