//! Multi-tenant workload mixes for the traffic engine.
//!
//! These builders turn the Fig. 9 access-pattern sweeps (row panels,
//! tiles, column panels over a 2-D matrix) into per-tenant command mixes
//! for [`nds_system::TrafficEngine`]. Everything is a pure function of
//! `(seed, tenant)`, so a [`TenantSet`] built here is a complete,
//! deterministic description of a multi-tenant run.

use nds_core::{ElementType, Shape};
use nds_sim::SimDuration;
use nds_system::{Arrival, OpKind, TenantOp, TenantSet, TenantSpec};

/// Canonical per-tenant dataset: a 64×64 `f32` matrix (16 KiB), the
/// smallest shape on which the Fig. 9 patterns (row panels, tiles,
/// column panels) are all distinct.
pub fn tenant_dataset() -> (Shape, ElementType) {
    (Shape::new([64, 64]), ElementType::F32)
}

/// splitmix64-style finalizer (same construction as the traffic
/// engine's): the only source of variation in a mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded Fig. 9-style command mix over [`tenant_dataset`]: each
/// operation is a row panel (8×64), a tile (16×16), or a column panel
/// (64×8) of the matrix, read with probability `read_pct`% and written
/// otherwise. The mix cycles inside the engine, so `ops` bounds the
/// pattern period, not the run length.
pub fn fig9_mix(seed: u64, tenant: u32, ops: usize, read_pct: u32) -> Vec<TenantOp> {
    (0..ops as u64)
        .map(|i| {
            let h = mix(seed ^ 0xf19_9000 ^ (u64::from(tenant) << 32) ^ i);
            let kind = if h % 100 < u64::from(read_pct.min(100)) {
                OpKind::Read
            } else {
                OpKind::Write
            };
            match (h >> 8) % 3 {
                0 => TenantOp {
                    kind,
                    dataset: 0,
                    coord: vec![(h >> 16) % 8, 0],
                    sub_dims: vec![8, 64],
                },
                1 => TenantOp {
                    kind,
                    dataset: 0,
                    coord: vec![(h >> 16) % 4, (h >> 24) % 4],
                    sub_dims: vec![16, 16],
                },
                _ => TenantOp {
                    kind,
                    dataset: 0,
                    coord: vec![0, (h >> 16) % 8],
                    sub_dims: vec![64, 8],
                },
            }
        })
        .collect()
}

/// A tenant running a [`fig9_mix`] over one [`tenant_dataset`].
pub fn fig9_tenant(
    seed: u64,
    tenant: u32,
    weight: u64,
    arrival: Arrival,
    total_ops: u64,
    read_pct: u32,
) -> TenantSpec {
    TenantSpec {
        weight,
        depth: 4,
        arrival,
        datasets: vec![tenant_dataset()],
        ops: fig9_mix(seed, tenant, 8, read_pct),
        total_ops,
    }
}

/// The acceptance scenario: `tenants` equal-weight tenants, even ids
/// closed (4 outstanding) and odd ids open with a saturating 2 µs mean
/// inter-arrival gap, each running `ops_per_tenant` mixed operations
/// (75% reads). With 16 tenants this is the "16-tenant mixed
/// open/closed" run the determinism and fairness tests assert on.
pub fn mixed_open_closed(seed: u64, tenants: u32, ops_per_tenant: u64) -> TenantSet {
    let mut set = TenantSet::new(seed);
    for t in 0..tenants {
        let arrival = if t % 2 == 0 {
            Arrival::Closed { outstanding: 4 }
        } else {
            Arrival::Open {
                mean_gap: SimDuration::from_micros(2),
            }
        };
        set = set.with_tenant(fig9_tenant(seed, t, 1, arrival, ops_per_tenant, 75));
    }
    set
}

/// A saturating closed tenant set with explicit per-tenant WFQ weights —
/// the input of the achieved-vs-configured share tests.
pub fn weighted_closed(seed: u64, weights: &[u64], ops_per_tenant: u64) -> TenantSet {
    let mut set = TenantSet::new(seed);
    for (t, &w) in weights.iter().enumerate() {
        set = set.with_tenant(fig9_tenant(
            seed,
            t as u32,
            w,
            Arrival::Closed { outstanding: 4 },
            ops_per_tenant,
            75,
        ));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_in_bounds() {
        let a = fig9_mix(11, 3, 32, 75);
        let b = fig9_mix(11, 3, 32, 75);
        assert_eq!(a, b);
        let (shape, _) = tenant_dataset();
        for op in &a {
            // Block coord × block shape stays inside the matrix.
            for ((&c, &s), &dim) in op
                .coord
                .iter()
                .zip(op.sub_dims.iter())
                .zip(shape.dims().iter())
            {
                assert!((c + 1) * s <= dim, "op out of bounds: {op:?}");
            }
        }
        assert!(a.iter().any(|op| op.kind == OpKind::Read));
        assert!(a.iter().any(|op| op.kind == OpKind::Write));
    }

    #[test]
    fn mixes_differ_across_tenants() {
        assert_ne!(fig9_mix(11, 0, 16, 75), fig9_mix(11, 1, 16, 75));
    }

    #[test]
    fn mixed_set_alternates_arrival_processes() {
        let set = mixed_open_closed(5, 4, 10);
        assert_eq!(set.tenants.len(), 4);
        let arrivals: Vec<bool> = set
            .tenants
            .iter()
            .map(|t| matches!(t.arrival, Arrival::Closed { .. }))
            .collect();
        assert_eq!(arrivals, vec![true, false, true, false]);
        assert!(set.tenants.iter().all(|t| t.total_ops == 10));
    }

    #[test]
    fn weighted_set_carries_weights() {
        let set = weighted_closed(5, &[1, 2, 4], 10);
        let w: Vec<u64> = set.tenants.iter().map(|t| t.weight).collect();
        assert_eq!(w, vec![1, 2, 4]);
    }
}
