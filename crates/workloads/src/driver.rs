//! The blocked-pipeline workload driver.
//!
//! Every workload streams its dataset through the same four-stage pipeline
//! the paper describes (§6.2): **I/O → restructure → host-to-device copy →
//! compute kernel**, with consecutive blocks overlapping. [`stream_phase`]
//! executes one such stream: it performs the front-end reads (functional
//! data + timing), hands each block's data to the workload's kernel closure,
//! and feeds the per-block stage durations to the pipeline scheduler.
//!
//! Workloads with data-dependent phases (BFS levels, iterative solvers) run
//! one `stream_phase` per phase and sum the results into a [`WorkloadRun`].

use nds_accel::ComputeEngine;
use nds_core::Shape;
use nds_host::pipeline::{self, StageTimes};
use nds_interconnect::LinkConfig;
use nds_sim::SimDuration;
use nds_system::{DatasetId, StorageFrontEnd, SystemError};
use serde::{Deserialize, Serialize};

/// One pipeline block: the front-end reads whose union feeds one kernel
/// launch. Each read is `(dataset, view, coord, sub_dims)`.
pub type BlockReads = Vec<(DatasetId, Shape, Vec<u64>, Vec<u64>)>;

/// Timing and traffic of one pipelined phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseOutcome {
    /// End-to-end latency of the phase.
    pub total: SimDuration,
    /// Busy time of the I/O stage.
    pub io_busy: SimDuration,
    /// Busy time of the restructure stage (baseline marshalling).
    pub restructure_busy: SimDuration,
    /// Busy time of the kernel stage.
    pub kernel_busy: SimDuration,
    /// Idle time of the kernel stage (Fig. 10(b)'s metric).
    pub kernel_idle: SimDuration,
    /// I/O commands issued.
    pub commands: u64,
    /// Payload bytes read.
    pub bytes: u64,
}

/// The summed result of running a workload on one architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: &'static str,
    /// Architecture name (from [`StorageFrontEnd::name`]).
    pub arch: &'static str,
    /// End-to-end latency across all phases.
    pub total: SimDuration,
    /// I/O-stage busy time across phases.
    pub io_busy: SimDuration,
    /// Restructure-stage busy time across phases (baseline marshalling).
    pub restructure_busy: SimDuration,
    /// Kernel busy time across phases.
    pub kernel_busy: SimDuration,
    /// Kernel idle time across phases (Fig. 10(b)).
    pub kernel_idle: SimDuration,
    /// Total I/O commands.
    pub commands: u64,
    /// Total payload bytes read.
    pub bytes: u64,
    /// Checksum of the workload's functional output.
    pub checksum: u64,
    /// Faults the architecture's fault plan injected during the run (zero
    /// when running fault-free).
    pub faults_injected: u64,
    /// Injected faults the stack recovered from. Equal to
    /// `faults_injected` on any run that completed — an unrecovered fault
    /// surfaces as a typed error instead of a [`WorkloadRun`].
    pub faults_recovered: u64,
    /// Flash and link retry attempts spent on recovery
    /// (`retries.flash` + `retries.link`).
    pub fault_retries: u64,
}

impl WorkloadRun {
    /// Builds a run summary from per-phase outcomes.
    pub fn from_phases(
        workload: &'static str,
        arch: &'static str,
        phases: &[PhaseOutcome],
        checksum: u64,
    ) -> Self {
        WorkloadRun {
            workload,
            arch,
            total: phases.iter().map(|p| p.total).sum(),
            io_busy: phases.iter().map(|p| p.io_busy).sum(),
            restructure_busy: phases.iter().map(|p| p.restructure_busy).sum(),
            kernel_busy: phases.iter().map(|p| p.kernel_busy).sum(),
            kernel_idle: phases.iter().map(|p| p.kernel_idle).sum(),
            commands: phases.iter().map(|p| p.commands).sum(),
            bytes: phases.iter().map(|p| p.bytes).sum(),
            checksum,
            faults_injected: 0,
            faults_recovered: 0,
            fault_retries: 0,
        }
    }

    /// Folds the run's pipeline-level timing and traffic into `report`
    /// under `workload.*` names, so a bench artifact carries the stage view
    /// (Fig. 10's busy/idle split) next to the component view.
    pub fn attach_to_report(&self, report: &mut nds_sim::RunReport) {
        report.set_meta("workload", self.workload);
        report.add_duration("workload.total", self.total);
        report.add_duration("workload.io_busy", self.io_busy);
        report.add_duration("workload.restructure_busy", self.restructure_busy);
        report.add_duration("workload.kernel_busy", self.kernel_busy);
        report.add_duration("workload.kernel_idle", self.kernel_idle);
        let mut stats = nds_sim::Stats::new();
        stats.add("workload.commands", self.commands);
        stats.add("workload.bytes", self.bytes);
        stats.add("workload.checksum", self.checksum);
        stats.add("workload.faults_injected", self.faults_injected);
        stats.add("workload.faults_recovered", self.faults_recovered);
        stats.add("workload.fault_retries", self.fault_retries);
        report.add_counters(&stats);
    }

    /// Records the fault subsystem's activity from the architecture's
    /// counters, so per-workload reports can show recovery effort next to
    /// the timing it inflated.
    pub fn with_fault_counters(mut self, stats: &nds_sim::Stats) -> Self {
        self.faults_injected = stats.get("faults.injected");
        self.faults_recovered = stats.get("faults.recovered");
        self.fault_retries = stats.sum_prefix("retries.");
        self
    }
}

/// Runs one pipelined phase.
///
/// For each block, the driver (1) performs the block's reads through the
/// front-end into a pool of reused buffers ([`StorageFrontEnd::read_into`],
/// so steady-state streaming allocates nothing per block), (2) calls
/// `kernel` with the blocks' data so the workload can compute real results,
/// and (3) schedules the pipeline with stage times
/// `[io, restructure, h2d, kernel]`. `tile_side` selects the engine's
/// operating point on its rate curve; `h2d` is the host→device copy path
/// (use [`LinkConfig::pcie3_x16`]; kernels that run on the host CPU pass
/// `None`).
///
/// # Errors
///
/// Propagates front-end errors.
pub fn stream_phase<S, F>(
    sys: &mut S,
    blocks: &[BlockReads],
    engine: &ComputeEngine,
    tile_side: u64,
    h2d: Option<LinkConfig>,
    mut kernel: F,
) -> Result<PhaseOutcome, SystemError>
where
    S: StorageFrontEnd + ?Sized,
    F: FnMut(usize, &[Vec<u8>]),
{
    let mut stage_times = Vec::with_capacity(blocks.len());
    let mut commands = 0u64;
    let mut bytes = 0u64;
    let mut buffers: Vec<Vec<u8>> = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let mut io = SimDuration::ZERO;
        let mut restructure = SimDuration::ZERO;
        let mut block_bytes = 0u64;
        if buffers.len() < block.len() {
            buffers.resize_with(block.len(), Vec::new);
        }
        for ((dataset, view, coord, sub), buf) in block.iter().zip(buffers.iter_mut()) {
            let out = sys.read_into(*dataset, view, coord, sub, buf)?;
            // Deep command queues hide fixed per-request latency after the
            // pipeline fills: the first block pays full latency, steady
            // state is paced by occupancy.
            io += if i == 0 {
                out.io_latency
            } else {
                out.io_occupancy
            };
            restructure += out.restructure;
            commands += out.commands;
            bytes += out.bytes;
            block_bytes += out.bytes;
        }
        kernel(i, &buffers[..block.len()]);
        let h2d_time = match h2d {
            Some(link) => link.per_command + link.peak.time_for_bytes(block_bytes),
            None => SimDuration::ZERO,
        };
        let kernel_time = engine.kernel_time(block_bytes, tile_side);
        stage_times.push(StageTimes::new([io, restructure, h2d_time, kernel_time]));
    }
    if stage_times.is_empty() {
        return Ok(PhaseOutcome {
            total: SimDuration::ZERO,
            io_busy: SimDuration::ZERO,
            restructure_busy: SimDuration::ZERO,
            kernel_busy: SimDuration::ZERO,
            kernel_idle: SimDuration::ZERO,
            commands: 0,
            bytes: 0,
        });
    }
    let result = pipeline::run(&stage_times);
    Ok(PhaseOutcome {
        total: result.total,
        io_busy: result.stage_busy[0],
        restructure_busy: result.stage_busy[1],
        kernel_busy: result.stage_busy[3],
        kernel_idle: result.stage_idle[3],
        commands,
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_core::ElementType;
    use nds_system::{BaselineSystem, SystemConfig};

    #[test]
    fn phase_reads_feed_kernel_and_account_time() {
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let shape = Shape::new([64, 64]);
        let id = sys.create_dataset(shape.clone(), ElementType::F32).unwrap();
        let data: Vec<u8> = (0..64 * 64 * 4).map(|i| (i % 251) as u8).collect();
        sys.write(id, &shape, &[0, 0], &[64, 64], &data).unwrap();

        let blocks: Vec<BlockReads> = (0..4)
            .map(|t| vec![(id, shape.clone(), vec![0, t], vec![64u64, 16])])
            .collect();
        let mut seen = 0usize;
        let engine = ComputeEngine::host_cpu();
        let phase = stream_phase(&mut sys, &blocks, &engine, 64, None, |_, bufs| {
            seen += bufs.len();
            assert_eq!(bufs[0].len(), 64 * 16 * 4);
        })
        .unwrap();
        assert_eq!(seen, 4);
        assert_eq!(phase.bytes, 64 * 64 * 4);
        assert!(phase.total > SimDuration::ZERO);
        assert!(phase.kernel_busy > SimDuration::ZERO);
        assert!(phase.io_busy > SimDuration::ZERO);
    }

    #[test]
    fn empty_phase_is_zero() {
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let engine = ComputeEngine::host_cpu();
        let phase = stream_phase(&mut sys, &[], &engine, 64, None, |_, _| {}).unwrap();
        assert_eq!(phase.total, SimDuration::ZERO);
    }

    #[test]
    fn run_summary_sums_phases() {
        let phase = PhaseOutcome {
            total: SimDuration::from_micros(10),
            io_busy: SimDuration::from_micros(4),
            restructure_busy: SimDuration::ZERO,
            kernel_busy: SimDuration::from_micros(5),
            kernel_idle: SimDuration::from_micros(1),
            commands: 3,
            bytes: 100,
        };
        let run = WorkloadRun::from_phases("w", "a", &[phase.clone(), phase], 42);
        assert_eq!(run.total, SimDuration::from_micros(20));
        assert_eq!(run.io_busy, SimDuration::from_micros(8));
        assert_eq!(run.restructure_busy, SimDuration::ZERO);
        assert_eq!(run.commands, 6);
        assert_eq!(run.bytes, 200);
        assert_eq!(run.checksum, 42);
        assert_eq!(run.faults_injected, 0, "fault-free by default");

        let mut stats = nds_sim::Stats::new();
        stats.add("faults.injected", 4);
        stats.add("faults.recovered", 4);
        stats.add("retries.flash", 5);
        stats.add("retries.link", 2);
        let run = run.with_fault_counters(&stats);
        assert_eq!(run.faults_injected, 4);
        assert_eq!(run.faults_recovered, 4);
        assert_eq!(run.fault_retries, 7);

        let mut report = nds_sim::RunReport::new();
        run.attach_to_report(&mut report);
        let json = report.to_json();
        assert!(json.contains("\"workload.total\""));
        assert!(json.contains("\"workload.commands\": 6"));
        assert!(json.contains("\"workload\": \"w\""));
    }
}
