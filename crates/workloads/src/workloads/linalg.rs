//! Block-GEMM (Table 1: Linear Algebra; MSplitGEMM-with-Tensor-Cores
//! baseline).
//!
//! `C = A × B` over matrices larger than device memory: the classic
//! pipelined blocked multiplication of Fig. 1. For each output tile
//! `C[i][j]`, the inner loop streams tile pairs `A[i][k]`, `B[k][j]` from
//! storage — and `B`'s tiles are square submatrices, the access pattern that
//! a row-serialized baseline serves worst (\[P1\]–\[P3\]).

use nds_core::{ElementType, Shape};
use nds_interconnect::LinkConfig;
use nds_system::{StorageFrontEnd, SystemError};

use super::util::{create_empty, create_full, tile_of};
use super::Workload;
use crate::data;
use crate::driver::{stream_phase, BlockReads, WorkloadRun};
use crate::kernels;
use crate::params::WorkloadParams;

/// Blocked dense matrix multiplication on Tensor-Core-class hardware.
#[derive(Debug, Clone)]
pub struct Gemm {
    params: WorkloadParams,
}

impl Gemm {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid (see [`WorkloadParams::validate`]).
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Gemm { params }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.params.n;
        (
            data::matrix_f32(n, n, self.params.seed),
            data::matrix_f32(n, n, self.params.seed ^ 0xA5A5),
        )
    }

    /// Runs the identical blocked computation purely in memory.
    fn compute(&self, a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = self.params.n as usize;
        let t = self.params.tile as usize;
        let tiles = n / t;
        let mut c = vec![0.0f32; n * n];
        for i in 0..tiles {
            for j in 0..tiles {
                let mut acc = vec![0.0f32; t * t];
                for k in 0..tiles {
                    let at = tile_of(a, n, t, k, i);
                    let bt = tile_of(b, n, t, j, k);
                    kernels::gemm_tile(t, &at, &bt, &mut acc);
                }
                super::util::place_tile(&mut c, n, t, j, i, &acc);
            }
        }
        c
    }
}

impl Workload for Gemm {
    fn name(&self) -> &'static str {
        "GEMM"
    }

    fn category(&self) -> &'static str {
        "Linear Algebra"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let n = self.params.n;
        let t = self.params.tile;
        let tiles = n / t;
        let shape = Shape::new([n, n]);
        let (a, b) = self.inputs();
        let a_id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&a))?;
        let b_id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&b))?;
        let c_id = create_empty(sys, &shape, ElementType::F32)?;

        // One pipeline block per (i, j, k) step: read A[i][k] and B[k][j].
        let mut blocks: Vec<BlockReads> = Vec::with_capacity((tiles * tiles * tiles) as usize);
        for i in 0..tiles {
            for j in 0..tiles {
                for k in 0..tiles {
                    blocks.push(vec![
                        (a_id, shape.clone(), vec![k, i], vec![t, t]),
                        (b_id, shape.clone(), vec![j, k], vec![t, t]),
                    ]);
                }
            }
        }

        let ts = t as usize;
        let mut acc = vec![0.0f32; ts * ts];
        let mut c_tiles: Vec<(u64, u64, Vec<f32>)> = Vec::new();
        let engine = self.params.tensor_engine();
        let phase = stream_phase(
            sys,
            &blocks,
            &engine,
            t,
            Some(LinkConfig::pcie3_x16()),
            |idx, buffers| {
                let k = idx as u64 % tiles;
                if k == 0 {
                    acc.iter_mut().for_each(|v| *v = 0.0);
                }
                let at = data::f32_from_bytes(&buffers[0]);
                let bt = data::f32_from_bytes(&buffers[1]);
                kernels::gemm_tile(ts, &at, &bt, &mut acc);
                if k == tiles - 1 {
                    let ij = idx as u64 / tiles;
                    c_tiles.push((ij / tiles, ij % tiles, acc.clone()));
                }
            },
        )?;

        // Persist C (functional; the paper's pipelines overlap result
        // write-back asynchronously, so it is not part of the timed path).
        let mut checksum_input = Vec::with_capacity((n * n) as usize);
        for (i, j, tile) in &c_tiles {
            sys.write(c_id, &shape, &[*j, *i], &[t, t], &data::f32_bytes(tile))?;
            checksum_input.extend_from_slice(tile);
        }
        let checksum = kernels::checksum_f32(&checksum_input);
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &[phase], checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        let (a, b) = self.inputs();
        let c = self.compute(&a, &b);
        let n = self.params.n as usize;
        let t = self.params.tile as usize;
        let tiles = n / t;
        // Same tile visit order as `run` for bit-identical accumulation.
        let mut checksum_input = Vec::with_capacity(n * n);
        for i in 0..tiles {
            for j in 0..tiles {
                checksum_input.extend_from_slice(&tile_of(&c, n, t, j, i));
            }
        }
        kernels::checksum_f32(&checksum_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_system::{BaselineSystem, SystemConfig};

    #[test]
    fn gemm_matches_reference_on_baseline() {
        let gemm = Gemm::new(WorkloadParams::tiny_test(3));
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let run = gemm.run(&mut sys).unwrap();
        assert_eq!(run.checksum, gemm.reference_checksum());
        assert_eq!(run.workload, "GEMM");
        assert!(run.commands > 0);
        // (n/t)³ blocks × 2 tiles each.
        let tiles = (256 / 64) as u64;
        assert_eq!(run.bytes, tiles * tiles * tiles * 2 * 64 * 64 * 4);
    }
}
