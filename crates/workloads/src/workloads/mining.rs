//! Data-mining workloads: K-Means and KNN (Table 1).
//!
//! Both consume the same clustering dataset — the paper pairs their inputs
//! (§6.2) to show NDS serving one stored dataset to kernels with different
//! block demands. Points have as many attributes as there are points (the
//! paper's square 65,536² dataset), so a compute kernel cannot hold whole
//! rows of every point: it streams **2-D sub-blocks** (point panel ×
//! attribute block) and accumulates partial distances per block (§6.2's
//! "restructure input data into sub-blocks prior to data processing").

use nds_core::{ElementType, Shape};
use nds_interconnect::LinkConfig;
use nds_system::{StorageFrontEnd, SystemError};

use super::util::create_full;
use super::Workload;
use crate::data;
use crate::driver::{stream_phase, BlockReads, WorkloadRun};
use crate::kernels;
use crate::params::WorkloadParams;

/// Clusters for K-Means.
const K_CLUSTERS: usize = 8;
/// Neighbors for KNN.
const K_NEIGHBORS: usize = 16;

fn points_shape(params: &WorkloadParams) -> Shape {
    // `n` attributes per point, `n` points; attributes fastest.
    Shape::new([params.n, params.n])
}

fn gen_points(params: &WorkloadParams) -> Vec<f32> {
    data::clustering_f32(params.n, params.n, params.seed)
}

/// Extracts the `(attr_block, point)` slice of a point's attributes from the
/// dense matrix.
fn centroid_block(centroids: &[f32], d: usize, block: usize, width: usize) -> Vec<f32> {
    let k = centroids.len() / d;
    let mut out = Vec::with_capacity(k * width);
    for c in 0..k {
        out.extend_from_slice(&centroids[c * d + block * width..c * d + (block + 1) * width]);
    }
    out
}

/// K-Means clustering over 2-D sub-blocks of the point matrix.
#[derive(Debug, Clone)]
pub struct KMeans {
    params: WorkloadParams,
}

impl KMeans {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        KMeans { params }
    }

    /// One iteration over the in-memory matrix with the *same* blocked
    /// visit order as the storage-driven run (bit-identical accumulation).
    fn iterate(&self, points: &[f32], centroids: &mut [f32]) {
        let d = self.params.n as usize;
        let t = self.params.tile as usize;
        let panels = d / t;
        let mut sums = vec![0.0f64; K_CLUSTERS * d];
        let mut counts = vec![0u64; K_CLUSTERS];
        for p in 0..panels {
            let mut dist = vec![0.0f32; t * K_CLUSTERS];
            for a in 0..panels {
                // Tile (a, p): points p·t.., attributes a·t.., attr fastest.
                let mut tile = Vec::with_capacity(t * t);
                for r in 0..t {
                    let row = (p * t + r) * d + a * t;
                    tile.extend_from_slice(&points[row..row + t]);
                }
                let cblock = centroid_block(centroids, d, a, t);
                kernels::sqdist_tile(&tile, t, &cblock, &mut dist);
            }
            for r in 0..t {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for c in 0..K_CLUSTERS {
                    if dist[r * K_CLUSTERS + c] < best_d {
                        best_d = dist[r * K_CLUSTERS + c];
                        best = c;
                    }
                }
                counts[best] += 1;
                let row = (p * t + r) * d;
                for (j, s) in sums[best * d..(best + 1) * d].iter_mut().enumerate() {
                    *s += points[row + j] as f64;
                }
            }
        }
        kernels::kmeans_update(&sums, &counts, d, centroids);
    }

    fn compute(&self, points: &[f32]) -> Vec<f32> {
        let d = self.params.n as usize;
        let mut centroids: Vec<f32> = points[..K_CLUSTERS * d].to_vec();
        for _ in 0..self.params.iterations {
            self.iterate(points, &mut centroids);
        }
        centroids
    }
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "KMeans"
    }

    fn category(&self) -> &'static str {
        "Data Mining"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let shape = points_shape(&self.params);
        let points = gen_points(&self.params);
        let id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&points))?;

        let d = self.params.n as usize;
        let t = self.params.tile;
        let ts = t as usize;
        let panels = self.params.n / t;
        let mut centroids: Vec<f32> = points[..K_CLUSTERS * d].to_vec();
        let engine = self.params.cuda_engine();
        let mut phases = Vec::new();
        for _ in 0..self.params.iterations {
            // Blocks in (point panel, attribute block) order; the point
            // panel's tiles are stashed so the assignment step can
            // accumulate full attribute sums without a second I/O pass.
            let blocks: Vec<BlockReads> = (0..panels)
                .flat_map(|p| {
                    (0..panels).map(move |a| -> BlockReads {
                        vec![(id, points_shape_of(d as u64), vec![a, p], vec![t, t])]
                    })
                })
                .collect();
            let mut sums = vec![0.0f64; K_CLUSTERS * d];
            let mut counts = vec![0u64; K_CLUSTERS];
            let mut dist = vec![0.0f32; ts * K_CLUSTERS];
            let mut stash: Vec<Vec<f32>> = Vec::with_capacity(panels as usize);
            let centroids_now = centroids.clone();
            let phase = stream_phase(
                sys,
                &blocks,
                &engine,
                t,
                Some(LinkConfig::pcie3_x16()),
                |idx, bufs| {
                    let a = idx as u64 % panels;
                    let p = idx as u64 / panels;
                    let _ = p;
                    if a == 0 {
                        dist.iter_mut().for_each(|v| *v = 0.0);
                        stash.clear();
                    }
                    let tile = data::f32_from_bytes(&bufs[0]);
                    let cblock = centroid_block(&centroids_now, d, a as usize, ts);
                    kernels::sqdist_tile(&tile, ts, &cblock, &mut dist);
                    stash.push(tile);
                    if a == panels - 1 {
                        for r in 0..ts {
                            let mut best = 0usize;
                            let mut best_d = f32::INFINITY;
                            for c in 0..K_CLUSTERS {
                                if dist[r * K_CLUSTERS + c] < best_d {
                                    best_d = dist[r * K_CLUSTERS + c];
                                    best = c;
                                }
                            }
                            counts[best] += 1;
                            for (blk, tile) in stash.iter().enumerate() {
                                let dst = &mut sums[best * d + blk * ts..best * d + (blk + 1) * ts];
                                for (s, v) in dst.iter_mut().zip(&tile[r * ts..(r + 1) * ts]) {
                                    *s += *v as f64;
                                }
                            }
                        }
                    }
                },
            )?;
            phases.push(phase);
            kernels::kmeans_update(&sums, &counts, d, &mut centroids);
        }
        let checksum = kernels::checksum_f32(&centroids);
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &phases, checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        kernels::checksum_f32(&self.compute(&gen_points(&self.params)))
    }
}

fn points_shape_of(n: u64) -> Shape {
    Shape::new([n, n])
}

/// K-nearest-neighbor search over 2-D sub-blocks of the point matrix.
#[derive(Debug, Clone)]
pub struct Knn {
    params: WorkloadParams,
}

impl Knn {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Knn { params }
    }

    fn compute(&self, points: &[f32]) -> Vec<(f32, u64)> {
        let d = self.params.n as usize;
        let t = self.params.tile as usize;
        let panels = d / t;
        let query: Vec<f32> = points[..d].to_vec();
        let mut best: Vec<(f32, u64)> = Vec::new();
        for p in 0..panels {
            let mut dist = vec![0.0f32; t];
            for a in 0..panels {
                let mut tile = Vec::with_capacity(t * t);
                for r in 0..t {
                    let row = (p * t + r) * d + a * t;
                    tile.extend_from_slice(&points[row..row + t]);
                }
                kernels::sqdist_tile(&tile, t, &query[a * t..(a + 1) * t], &mut dist);
            }
            merge_knn(&dist, (p * t) as u64, &mut best);
        }
        best
    }
}

/// Merges a panel's complete distances into the running k-best list.
fn merge_knn(dist: &[f32], base: u64, best: &mut Vec<(f32, u64)>) {
    for (r, &d) in dist.iter().enumerate() {
        let idx = base + r as u64;
        if best.len() < K_NEIGHBORS {
            best.push((d, idx));
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        } else if d < {
            #[allow(clippy::expect_used)] // the branch above guarantees best is non-empty
            best.last().expect("non-empty").0
        } {
            best.pop();
            best.push((d, idx));
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
    }
}

impl Workload for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn category(&self) -> &'static str {
        "Data Mining"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let shape = points_shape(&self.params);
        let points = gen_points(&self.params);
        let id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&points))?;

        let d = self.params.n as usize;
        let t = self.params.tile;
        let ts = t as usize;
        let panels = self.params.n / t;
        let query: Vec<f32> = points[..d].to_vec();
        let engine = self.params.cuda_engine();

        let blocks: Vec<BlockReads> = (0..panels)
            .flat_map(|p| {
                (0..panels).map(move |a| -> BlockReads {
                    vec![(id, points_shape_of(d as u64), vec![a, p], vec![t, t])]
                })
            })
            .collect();
        let mut best: Vec<(f32, u64)> = Vec::new();
        let mut dist = vec![0.0f32; ts];
        let phase = stream_phase(
            sys,
            &blocks,
            &engine,
            t,
            Some(LinkConfig::pcie3_x16()),
            |idx, bufs| {
                let a = idx as u64 % panels;
                let p = idx as u64 / panels;
                if a == 0 {
                    dist.iter_mut().for_each(|v| *v = 0.0);
                }
                let tile = data::f32_from_bytes(&bufs[0]);
                kernels::sqdist_tile(
                    &tile,
                    ts,
                    &query[(a as usize) * ts..(a as usize + 1) * ts],
                    &mut dist,
                );
                if a == panels - 1 {
                    merge_knn(&dist, p * t, &mut best);
                }
            },
        )?;
        let checksum = kernels::checksum_u64(best.iter().map(|&(_, i)| i));
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &[phase], checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        let best = self.compute(&gen_points(&self.params));
        kernels::checksum_u64(best.iter().map(|&(_, i)| i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_system::{HardwareNds, SoftwareNds, SystemConfig};

    #[test]
    fn kmeans_matches_reference() {
        let km = KMeans::new(WorkloadParams::tiny_test(21));
        let mut sys = SoftwareNds::new(SystemConfig::small_test());
        let run = km.run(&mut sys).unwrap();
        assert_eq!(run.checksum, km.reference_checksum());
    }

    #[test]
    fn knn_matches_reference_and_finds_query_itself() {
        let knn = Knn::new(WorkloadParams::tiny_test(22));
        let mut sys = HardwareNds::new(SystemConfig::small_test());
        let run = knn.run(&mut sys).unwrap();
        assert_eq!(run.checksum, knn.reference_checksum());
        let best = knn.compute(&gen_points(&WorkloadParams::tiny_test(22)));
        assert_eq!(best[0].1, 0, "nearest neighbor of point 0 is itself");
        assert_eq!(best.len(), K_NEIGHBORS);
    }

    #[test]
    fn shared_dataset_different_kernels() {
        // KMeans and KNN consume the identical generated bytes (§6.2).
        let p = WorkloadParams::tiny_test(23);
        assert_eq!(gen_points(&p), gen_points(&p));
    }
}
