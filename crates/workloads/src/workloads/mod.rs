//! The workload trait and the Table 1 catalog.

mod graph;
mod linalg;
mod mining;
mod stencil;
mod tensor;
mod util;

pub use graph::{Bfs, PageRank, Sssp};
pub use linalg::Gemm;
pub use mining::{KMeans, Knn};
pub use stencil::{Conv2d, Hotspot};
pub use tensor::{Tc, Ttv};

use nds_system::{StorageFrontEnd, SystemError};

use crate::driver::WorkloadRun;
use crate::params::WorkloadParams;

/// One evaluation workload: generates its dataset, streams it through a
/// storage front-end with the paper's pipelined blocking, computes real
/// results, and reports timing plus a functional checksum.
pub trait Workload {
    /// Table 1 name ("GEMM", "BFS", …).
    fn name(&self) -> &'static str;

    /// Table 1 category ("Linear Algebra", "Graph Traversal", …).
    fn category(&self) -> &'static str;

    /// The compute kernel's sub-dimensionality (fastest dimension first) —
    /// what the §7.2 oracle pre-tiles the dataset by.
    fn kernel_tile(&self) -> Vec<u64>;

    /// Runs the workload end to end on `sys`.
    ///
    /// # Errors
    ///
    /// Propagates storage front-end errors.
    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError>;

    /// The checksum an exact in-memory execution produces — every
    /// architecture must match it bit for bit.
    fn reference_checksum(&self) -> u64;
}

/// All ten Table 1 workloads at the given parameters, in the paper's order.
pub fn all_workloads(params: WorkloadParams) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Bfs::new(params)),
        Box::new(Sssp::new(params)),
        Box::new(Gemm::new(params)),
        Box::new(Hotspot::new(params)),
        Box::new(KMeans::new(params)),
        Box::new(Knn::new(params)),
        Box::new(PageRank::new(params)),
        Box::new(Conv2d::new(params)),
        Box::new(Ttv::new(params)),
        Box::new(Tc::new(params)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_1() {
        let all = all_workloads(WorkloadParams::tiny_test(1));
        let names: Vec<_> = all.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "BFS", "SSSP", "GEMM", "Hotspot", "KMeans", "KNN", "PageRank", "Conv2D", "TTV",
                "TC"
            ]
        );
        for w in &all {
            assert!(!w.category().is_empty());
            assert!(!w.kernel_tile().is_empty());
        }
    }
}
