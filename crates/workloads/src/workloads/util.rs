//! Shared helpers for the workload implementations.

use nds_core::{ElementType, Shape};
use nds_system::{DatasetId, StorageFrontEnd, SystemError};

/// Creates a dataset and writes `bytes` as its full contents.
pub(crate) fn create_full(
    sys: &mut dyn StorageFrontEnd,
    shape: &Shape,
    element: ElementType,
    bytes: &[u8],
) -> Result<DatasetId, SystemError> {
    let id = sys.create_dataset(shape.clone(), element)?;
    let zeros = vec![0u64; shape.ndims()];
    let full: Vec<u64> = shape.dims().to_vec();
    sys.write(id, shape, &zeros, &full, bytes)?;
    Ok(id)
}

/// Creates an empty (all-zero) dataset.
pub(crate) fn create_empty(
    sys: &mut dyn StorageFrontEnd,
    shape: &Shape,
    element: ElementType,
) -> Result<DatasetId, SystemError> {
    sys.create_dataset(shape.clone(), element)
}

/// Extracts the `t × t` tile at tile coordinate `(tx, ty)` from an `n × n`
/// row-major matrix (x fastest).
pub(crate) fn tile_of(m: &[f32], n: usize, t: usize, tx: usize, ty: usize) -> Vec<f32> {
    let mut tile = Vec::with_capacity(t * t);
    for y in 0..t {
        let row = (ty * t + y) * n + tx * t;
        tile.extend_from_slice(&m[row..row + t]);
    }
    tile
}

/// Writes tile `(tx, ty)` back into an `n × n` row-major matrix.
pub(crate) fn place_tile(m: &mut [f32], n: usize, t: usize, tx: usize, ty: usize, tile: &[f32]) {
    for y in 0..t {
        let row = (ty * t + y) * n + tx * t;
        m[row..row + t].copy_from_slice(&tile[y * t..(y + 1) * t]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_round_trip() {
        let n = 8;
        let t = 4;
        let m: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let tile = tile_of(&m, n, t, 1, 1);
        assert_eq!(tile[0], (4 * n + 4) as f32);
        let mut m2 = vec![0.0; n * n];
        place_tile(&mut m2, n, t, 1, 1, &tile);
        assert_eq!(m2[4 * n + 4], tile[0]);
        assert_eq!(tile_of(&m2, n, t, 1, 1), tile);
    }
}
