//! Stencil workloads: Hotspot and Conv2D (Table 1).
//!
//! Both stream square tiles — the 2-D kernel sub-dimensionality of Table 1 —
//! and Hotspot additionally fetches one-row/one-column *halo strips* from
//! the neighboring tiles each sweep, exercising NDS's ability to serve thin
//! unaligned slices of the same stored dataset.

use nds_core::{ElementType, Shape};
use nds_interconnect::LinkConfig;
use nds_system::{DatasetId, StorageFrontEnd, SystemError};

use super::util::{create_empty, create_full, place_tile, tile_of};
use super::Workload;
use crate::data;
use crate::driver::{stream_phase, BlockReads, WorkloadRun};
use crate::kernels;
use crate::params::WorkloadParams;

/// Box-filter radius for Conv2D (the CUDA separable-convolution sample's
/// default neighborhood scale).
const CONV_RADIUS: usize = 4;

/// The Hotspot thermal simulation: Jacobi sweeps over tiles with halos.
#[derive(Debug, Clone)]
pub struct Hotspot {
    params: WorkloadParams,
}

impl Hotspot {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Hotspot { params }
    }

    fn initial_temp(&self) -> Vec<f32> {
        data::matrix_f32(self.params.n, self.params.n, self.params.seed)
            .iter()
            .map(|v| 40.0 + 10.0 * v)
            .collect()
    }

    fn power(&self) -> Vec<f32> {
        data::matrix_f32(self.params.n, self.params.n, self.params.seed ^ 0x0F0F)
            .iter()
            .map(|v| v.abs())
            .collect()
    }

    fn sweep(&self, temp: &[f32], power: &[f32]) -> Vec<f32> {
        let n = self.params.n as usize;
        let t = self.params.tile as usize;
        let tiles = n / t;
        let mut next = vec![0.0f32; n * n];
        for ty in 0..tiles {
            for tx in 0..tiles {
                let tile = tile_of(temp, n, t, tx, ty);
                let ptile = tile_of(power, n, t, tx, ty);
                let north = halo_row(temp, n, t, tx, ty as isize - 1, t - 1);
                let south = halo_row(temp, n, t, tx, ty as isize + 1, 0);
                let west = halo_col(temp, n, t, tx as isize - 1, ty, t - 1);
                let east = halo_col(temp, n, t, tx as isize + 1, ty, 0);
                let mut out = vec![0.0f32; t * t];
                kernels::hotspot_tile(t, &tile, &ptile, &north, &south, &west, &east, &mut out);
                place_tile(&mut next, n, t, tx, ty, &out);
            }
        }
        next
    }

    fn compute(&self) -> Vec<f32> {
        let mut temp = self.initial_temp();
        let power = self.power();
        for _ in 0..self.params.iterations {
            temp = self.sweep(&temp, &power);
        }
        temp
    }
}

fn halo_row(m: &[f32], n: usize, t: usize, tx: usize, ty: isize, row_in_tile: usize) -> Vec<f32> {
    if ty < 0 || ty as usize >= n / t {
        return Vec::new();
    }
    let y = ty as usize * t + row_in_tile;
    m[y * n + tx * t..y * n + tx * t + t].to_vec()
}

fn halo_col(m: &[f32], n: usize, t: usize, tx: isize, ty: usize, col_in_tile: usize) -> Vec<f32> {
    if tx < 0 || tx as usize >= n / t {
        return Vec::new();
    }
    let x = tx as usize * t + col_in_tile;
    (0..t).map(|dy| m[(ty * t + dy) * n + x]).collect()
}

impl Workload for Hotspot {
    fn name(&self) -> &'static str {
        "Hotspot"
    }

    fn category(&self) -> &'static str {
        "Physics Simulation"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let n = self.params.n;
        let t = self.params.tile;
        let tiles = n / t;
        let shape = Shape::new([n, n]);
        let power = self.power();
        let power_id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&power))?;
        let temp0 = self.initial_temp();
        let mut ping = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&temp0))?;
        let mut pong: DatasetId = create_empty(sys, &shape, ElementType::F32)?;

        let ts = t as usize;
        let engine = self.params.cuda_engine();
        let mut phases = Vec::new();
        for _ in 0..self.params.iterations {
            // Build the per-tile read lists: tile + power + up to 4 halos.
            let mut blocks: Vec<BlockReads> = Vec::with_capacity((tiles * tiles) as usize);
            let mut halo_kinds: Vec<[bool; 4]> = Vec::with_capacity(blocks.capacity());
            for ty in 0..tiles {
                for tx in 0..tiles {
                    let mut reads: BlockReads = vec![
                        (ping, shape.clone(), vec![tx, ty], vec![t, t]),
                        (power_id, shape.clone(), vec![tx, ty], vec![t, t]),
                    ];
                    let mut kinds = [false; 4];
                    if ty > 0 {
                        reads.push((ping, shape.clone(), vec![tx, ty * t - 1], vec![t, 1]));
                        kinds[0] = true;
                    }
                    if ty + 1 < tiles {
                        reads.push((ping, shape.clone(), vec![tx, (ty + 1) * t], vec![t, 1]));
                        kinds[1] = true;
                    }
                    if tx > 0 {
                        reads.push((ping, shape.clone(), vec![tx * t - 1, ty], vec![1, t]));
                        kinds[2] = true;
                    }
                    if tx + 1 < tiles {
                        reads.push((ping, shape.clone(), vec![(tx + 1) * t, ty], vec![1, t]));
                        kinds[3] = true;
                    }
                    blocks.push(reads);
                    halo_kinds.push(kinds);
                }
            }

            let mut out_tiles: Vec<Vec<f32>> = Vec::with_capacity(blocks.len());
            let phase = stream_phase(
                sys,
                &blocks,
                &engine,
                t,
                Some(LinkConfig::pcie3_x16()),
                |idx, bufs| {
                    let tile = data::f32_from_bytes(&bufs[0]);
                    let ptile = data::f32_from_bytes(&bufs[1]);
                    let kinds = halo_kinds[idx];
                    let mut cursor = 2;
                    let mut halo = |present: bool| -> Vec<f32> {
                        if present {
                            let h = data::f32_from_bytes(&bufs[cursor]);
                            cursor += 1;
                            h
                        } else {
                            Vec::new()
                        }
                    };
                    let north = halo(kinds[0]);
                    let south = halo(kinds[1]);
                    let west = halo(kinds[2]);
                    let east = halo(kinds[3]);
                    let mut out = vec![0.0f32; ts * ts];
                    kernels::hotspot_tile(
                        ts, &tile, &ptile, &north, &south, &west, &east, &mut out,
                    );
                    out_tiles.push(out);
                },
            )?;
            phases.push(phase);

            // Write the sweep's results to the other buffer (functional).
            for (idx, out) in out_tiles.iter().enumerate() {
                let ty = idx as u64 / tiles;
                let tx = idx as u64 % tiles;
                sys.write(pong, &shape, &[tx, ty], &[t, t], &data::f32_bytes(out))?;
            }
            core::mem::swap(&mut ping, &mut pong);
        }

        // Checksum the final grid as stored.
        let zeros = vec![0u64; 2];
        let full = vec![n, n];
        let final_temp = sys.read(ping, &shape, &zeros, &full)?;
        let checksum = kernels::checksum_f32(&data::f32_from_bytes(&final_temp.data));
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &phases, checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        kernels::checksum_f32(&self.compute())
    }
}

/// Separable 2-D convolution over image tiles.
#[derive(Debug, Clone)]
pub struct Conv2d {
    params: WorkloadParams,
}

impl Conv2d {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Conv2d { params }
    }

    fn image(&self) -> Vec<f32> {
        data::matrix_f32(self.params.n, self.params.n, self.params.seed)
    }

    fn compute(&self) -> Vec<f32> {
        let n = self.params.n as usize;
        let t = self.params.tile as usize;
        let tiles = n / t;
        let image = self.image();
        let mut out = vec![0.0f32; n * n];
        for ty in 0..tiles {
            for tx in 0..tiles {
                let tile = tile_of(&image, n, t, tx, ty);
                let mut o = vec![0.0f32; t * t];
                kernels::conv2d_tile(t, CONV_RADIUS, &tile, &mut o);
                place_tile(&mut out, n, t, tx, ty, &o);
            }
        }
        out
    }
}

impl Workload for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2D"
    }

    fn category(&self) -> &'static str {
        "Image Processing"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let n = self.params.n;
        let t = self.params.tile;
        let tiles = n / t;
        let shape = Shape::new([n, n]);
        let image = self.image();
        let img_id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&image))?;
        let out_id = create_empty(sys, &shape, ElementType::F32)?;

        let blocks: Vec<BlockReads> = (0..tiles * tiles)
            .map(|idx| {
                let ty = idx / tiles;
                let tx = idx % tiles;
                vec![(img_id, shape.clone(), vec![tx, ty], vec![t, t])]
            })
            .collect();

        let ts = t as usize;
        let engine = self.params.cuda_engine();
        let mut out_tiles: Vec<Vec<f32>> = Vec::with_capacity(blocks.len());
        let phase = stream_phase(
            sys,
            &blocks,
            &engine,
            t,
            Some(LinkConfig::pcie3_x16()),
            |_, bufs| {
                let tile = data::f32_from_bytes(&bufs[0]);
                let mut o = vec![0.0f32; ts * ts];
                kernels::conv2d_tile(ts, CONV_RADIUS, &tile, &mut o);
                out_tiles.push(o);
            },
        )?;

        let mut checksum_input = Vec::with_capacity((n * n) as usize);
        let ns = n as usize;
        let mut out_full = vec![0.0f32; ns * ns];
        for (idx, o) in out_tiles.iter().enumerate() {
            let ty = idx as u64 / tiles;
            let tx = idx as u64 % tiles;
            sys.write(out_id, &shape, &[tx, ty], &[t, t], &data::f32_bytes(o))?;
            place_tile(&mut out_full, ns, ts, tx as usize, ty as usize, o);
        }
        checksum_input.extend_from_slice(&out_full);
        let checksum = kernels::checksum_f32(&checksum_input);
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &[phase], checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        kernels::checksum_f32(&self.compute())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_system::{BaselineSystem, HardwareNds, SystemConfig};

    #[test]
    fn hotspot_matches_reference() {
        let hs = Hotspot::new(WorkloadParams::tiny_test(31));
        let mut sys = HardwareNds::new(SystemConfig::small_test());
        let run = hs.run(&mut sys).unwrap();
        assert_eq!(run.checksum, hs.reference_checksum());
        assert!(run.commands > 0);
    }

    #[test]
    fn conv2d_matches_reference() {
        let cv = Conv2d::new(WorkloadParams::tiny_test(32));
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let run = cv.run(&mut sys).unwrap();
        assert_eq!(run.checksum, cv.reference_checksum());
    }

    #[test]
    fn hotspot_heat_diffuses() {
        let hs = Hotspot::new(WorkloadParams::tiny_test(33));
        let before = hs.initial_temp();
        let after = hs.compute();
        assert_ne!(
            kernels::checksum_f32(&before),
            kernels::checksum_f32(&after),
            "sweeps must change the temperature field"
        );
    }
}
