//! Tensor-algebra workloads: TTV and TC (Table 1).
//!
//! Both stream 2-D kernel tiles of 3-D tensor slices — the paper's 2048³
//! tensors with 512² kernel sub-blocks: the consumer views a 3-D space
//! through 2-D tiles *smaller than a slice*, so tile rows are scattered in
//! any linear serialization. This is the dimensionality decoupling NDS is
//! built for (§3, Fig. 5). The two workloads share the same generated
//! tensor, as in the paper (§6.2).

use nds_core::{ElementType, Shape};
use nds_interconnect::LinkConfig;
use nds_system::{StorageFrontEnd, SystemError};

use super::util::create_full;
use super::Workload;
use crate::data;
use crate::driver::{stream_phase, BlockReads, WorkloadRun};
use crate::kernels;
use crate::params::WorkloadParams;

/// Slice side: twice the kernel tile, so kernel tiles are quarter-slices —
/// mirroring the paper's 2048²-slice / 512²-kernel ratio class, with the
/// kernel tile matching the building-block width (as the paper's 512²
/// kernels match its 512-wide f32 blocks).
fn side(params: &WorkloadParams) -> u64 {
    params.tile * 2
}

/// Kernel tile side.
fn ktile(params: &WorkloadParams) -> u64 {
    params.tile
}

/// Tensor depth (number of slices). TTV touches each slice once with a
/// trivial kernel; TC runs a blocked matmul per slice, so it uses fewer.
fn depth(params: &WorkloadParams, for_tc: bool) -> u64 {
    let d = if for_tc {
        params.tile / 16
    } else {
        params.tile / 4
    };
    d.max(4)
}

fn weights(params: &WorkloadParams) -> Vec<f32> {
    data::matrix_f32(depth(params, false), 1, params.seed ^ 0x7777)
}

/// Generates a `(w, w, d)` tensor (x fastest).
fn gen_tensor(w: u64, d: u64, seed: u64) -> Vec<f32> {
    let mut all = data::tensor_f32(w, seed);
    // tensor_f32 yields w³ values; take the first w·w·d (deterministic).
    all.truncate((w * w * d) as usize);
    all
}

/// Extracts kernel tile `(tx, ty)` of slice `s` from an in-memory tensor.
fn slice_tile(tensor: &[f32], m: usize, q: usize, tx: usize, ty: usize, s: usize) -> Vec<f32> {
    let mut tile = Vec::with_capacity(q * q);
    let base = s * m * m;
    for y in 0..q {
        let row = base + (ty * q + y) * m + tx * q;
        tile.extend_from_slice(&tensor[row..row + q]);
    }
    tile
}

/// Tensor-times-vector over the slowest mode: `out = Σₛ v[s] · T[·,·,s]`,
/// streamed in quarter-slice kernel tiles.
#[derive(Debug, Clone)]
pub struct Ttv {
    params: WorkloadParams,
}

impl Ttv {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Ttv { params }
    }

    fn tensor(&self) -> Vec<f32> {
        gen_tensor(
            side(&self.params),
            depth(&self.params, false),
            self.params.seed,
        )
    }

    fn compute(&self) -> Vec<f32> {
        let m = side(&self.params) as usize;
        let q = ktile(&self.params) as usize;
        let grid = m / q;
        let slices = depth(&self.params, false) as usize;
        let tensor = self.tensor();
        let v = weights(&self.params);
        let mut out = vec![0.0f32; m * m];
        for (s, &weight) in v.iter().enumerate().take(slices) {
            for ty in 0..grid {
                for tx in 0..grid {
                    let tile = slice_tile(&tensor, m, q, tx, ty, s);
                    for y in 0..q {
                        let row = (ty * q + y) * m + tx * q;
                        kernels::ttv_slice(
                            &tile[y * q..(y + 1) * q],
                            weight,
                            &mut out[row..row + q],
                        );
                    }
                }
            }
        }
        out
    }
}

impl Workload for Ttv {
    fn name(&self) -> &'static str {
        "TTV"
    }

    fn category(&self) -> &'static str {
        "Tensor Algebra"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        let q = ktile(&self.params);
        vec![q, q, 1]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let m = side(&self.params);
        let q = ktile(&self.params);
        let grid = m / q;
        let slices = depth(&self.params, false);
        let shape = Shape::new([m, m, slices]);
        let tensor = self.tensor();
        let id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&tensor))?;
        let v = weights(&self.params);

        let blocks: Vec<BlockReads> = (0..slices)
            .flat_map(|s| {
                (0..grid * grid).map(move |g| -> BlockReads {
                    let ty = g / grid;
                    let tx = g % grid;
                    vec![(
                        id,
                        Shape::new([m, m, slices]),
                        vec![tx, ty, s],
                        vec![q, q, 1],
                    )]
                })
            })
            .collect();
        let ms = m as usize;
        let qs = q as usize;
        let grids = grid as usize;
        let mut out = vec![0.0f32; ms * ms];
        let engine = self.params.tensor_engine();
        let phase = stream_phase(
            sys,
            &blocks,
            &engine,
            q,
            Some(LinkConfig::pcie3_x16()),
            |idx, bufs| {
                let s = idx / (grids * grids);
                let g = idx % (grids * grids);
                let ty = g / grids;
                let tx = g % grids;
                let tile = data::f32_from_bytes(&bufs[0]);
                for y in 0..qs {
                    let row = (ty * qs + y) * ms + tx * qs;
                    kernels::ttv_slice(&tile[y * qs..(y + 1) * qs], v[s], &mut out[row..row + qs]);
                }
            },
        )?;
        let checksum = kernels::checksum_f32(&out);
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &[phase], checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        kernels::checksum_f32(&self.compute())
    }
}

/// Tensor contraction over the slowest mode:
/// `C[i,j] = Σₛ Σₖ A[i,k,s] · B[k,j,s]`, blocked into quarter-slice tiles.
#[derive(Debug, Clone)]
pub struct Tc {
    params: WorkloadParams,
}

impl Tc {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Tc { params }
    }

    fn tensors(&self) -> (Vec<f32>, Vec<f32>) {
        // A shares TTV's tensor prefix (the paper pairs their inputs, §6.2).
        let d = depth(&self.params, true);
        (
            gen_tensor(side(&self.params), d, self.params.seed),
            gen_tensor(side(&self.params), d, self.params.seed ^ 0x1234),
        )
    }

    fn compute(&self) -> Vec<f32> {
        let m = side(&self.params) as usize;
        let q = ktile(&self.params) as usize;
        let grid = m / q;
        let slices = depth(&self.params, true) as usize;
        let (a, b) = self.tensors();
        // C tiles in (i, j) order, accumulated over (s, k) exactly as the
        // streamed run does.
        let mut c_tiles = vec![vec![0.0f32; q * q]; grid * grid];
        for s in 0..slices {
            for i in 0..grid {
                for j in 0..grid {
                    for k in 0..grid {
                        let at = slice_tile(&a, m, q, k, i, s);
                        let bt = slice_tile(&b, m, q, j, k, s);
                        kernels::gemm_tile(q, &at, &bt, &mut c_tiles[i * grid + j]);
                    }
                }
            }
        }
        c_tiles.concat()
    }
}

impl Workload for Tc {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn category(&self) -> &'static str {
        "Tensor Algebra"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        let q = ktile(&self.params);
        vec![q, q, 1]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let m = side(&self.params);
        let q = ktile(&self.params);
        let grid = m / q;
        let slices = depth(&self.params, true);
        let shape = Shape::new([m, m, slices]);
        let (a, b) = self.tensors();
        let a_id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&a))?;
        let b_id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&b))?;

        let mut blocks: Vec<BlockReads> = Vec::new();
        for s in 0..slices {
            for i in 0..grid {
                for j in 0..grid {
                    for k in 0..grid {
                        blocks.push(vec![
                            (
                                a_id,
                                Shape::new([m, m, slices]),
                                vec![k, i, s],
                                vec![q, q, 1],
                            ),
                            (
                                b_id,
                                Shape::new([m, m, slices]),
                                vec![j, k, s],
                                vec![q, q, 1],
                            ),
                        ]);
                    }
                }
            }
        }
        let qs = q as usize;
        let grids = grid as usize;
        let mut c_tiles = vec![vec![0.0f32; qs * qs]; grids * grids];
        let engine = self.params.tensor_engine();
        let phase = stream_phase(
            sys,
            &blocks,
            &engine,
            q,
            Some(LinkConfig::pcie3_x16()),
            |idx, bufs| {
                let within = idx % (grids * grids * grids);
                let i = within / (grids * grids);
                let j = (within / grids) % grids;
                let at = data::f32_from_bytes(&bufs[0]);
                let bt = data::f32_from_bytes(&bufs[1]);
                kernels::gemm_tile(qs, &at, &bt, &mut c_tiles[i * grids + j]);
            },
        )?;
        let checksum = kernels::checksum_f32(&c_tiles.concat());
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &[phase], checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        kernels::checksum_f32(&self.compute())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_system::{BaselineSystem, SoftwareNds, SystemConfig};

    #[test]
    fn ttv_matches_reference() {
        let ttv = Ttv::new(WorkloadParams::tiny_test(41));
        let mut sys = SoftwareNds::new(SystemConfig::small_test());
        let run = ttv.run(&mut sys).unwrap();
        assert_eq!(run.checksum, ttv.reference_checksum());
    }

    #[test]
    fn tc_matches_reference() {
        let tc = Tc::new(WorkloadParams::tiny_test(42));
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let run = tc.run(&mut sys).unwrap();
        assert_eq!(run.checksum, tc.reference_checksum());
    }

    #[test]
    fn ttv_and_tc_share_the_first_tensor() {
        // TC uses a shallower prefix of the same generated tensor (§6.2's
        // shared inputs; TC's per-slice matmuls are costlier, so it reads
        // fewer slices).
        let p = WorkloadParams::tiny_test(43);
        let ttv = Ttv::new(p);
        let tc = Tc::new(p);
        let tc_a = tc.tensors().0;
        assert_eq!(ttv.tensor()[..tc_a.len()], tc_a[..]);
    }

    #[test]
    fn ttv_result_is_weighted_sum_of_slices() {
        let p = WorkloadParams::tiny_test(44);
        let ttv = Ttv::new(p);
        let out = ttv.compute();
        // Spot-check one element against the direct definition.
        let m = side(&p) as usize;
        let tensor = ttv.tensor();
        let v = weights(&p);
        let slices = depth(&p, false) as usize;
        let direct: f32 = (0..slices)
            .map(|s| v[s] * tensor[s * m * m + 5 * m + 3])
            .sum();
        assert!((out[5 * m + 3] - direct).abs() < 1e-3);
    }
}
