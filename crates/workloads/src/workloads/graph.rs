//! Graph workloads: BFS, SSSP (Bellman-Ford), and PageRank (Table 1).
//!
//! All three traverse a dense adjacency representation (the artifact's
//! generators emit binary adjacency matrices, A.3.4). BFS reads individual
//! rows along the frontier — a *sequential-friendly* pattern, which is why
//! the paper finds BFS "receives almost no benefit from the software-only
//! NDS" (§7.2). SSSP and PageRank, like every other kernel in §6.2, process
//! the matrix in 2-D sub-blocks sized to fit the accelerator.

use nds_core::{ElementType, Shape};
use nds_interconnect::LinkConfig;
use nds_system::{StorageFrontEnd, SystemError};

use super::util::create_full;
use super::Workload;
use crate::data;
use crate::driver::{stream_phase, BlockReads, WorkloadRun};
use crate::kernels;
use crate::params::WorkloadParams;

/// Upper bound on relaxation rounds for SSSP (random graphs at our density
/// converge in far fewer; the cap keeps adversarial seeds bounded).
const MAX_SSSP_ROUNDS: usize = 32;

fn edges_for(n: u64) -> u64 {
    8 * n // average out-degree 8, matching sparse-graph benchmarks
}

/// Breadth-first search over a binary adjacency matrix.
#[derive(Debug, Clone)]
pub struct Bfs {
    params: WorkloadParams,
}

impl Bfs {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Bfs { params }
    }

    fn graph(&self) -> Vec<u8> {
        data::adjacency_u8(self.params.n, edges_for(self.params.n), self.params.seed)
    }

    fn compute(&self, adj: &[u8]) -> Vec<u32> {
        let n = self.params.n as usize;
        let mut levels = vec![u32::MAX; n];
        levels[0] = 0;
        let mut frontier = vec![0u64];
        let mut level = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                let row = &adj[node as usize * n..(node as usize + 1) * n];
                next.extend(kernels::bfs_expand(row, level, &mut levels));
            }
            next.sort_unstable();
            frontier = next;
            level += 1;
        }
        levels
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn category(&self) -> &'static str {
        "Graph Traversal"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.n, 1] // one adjacency row (Table 1: 1-D kernel)
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let n = self.params.n;
        let shape = Shape::new([n, n]);
        let adj = self.graph();
        let id = create_full(sys, &shape, ElementType::U8, &adj)?;

        let engine = self.params.host_engine();
        let mut levels = vec![u32::MAX; n as usize];
        levels[0] = 0;
        let mut frontier = vec![0u64];
        let mut level = 0u32;
        let mut phases = Vec::new();
        while !frontier.is_empty() {
            let blocks: Vec<BlockReads> = frontier
                .iter()
                .map(|&node| vec![(id, shape.clone(), vec![0, node], vec![n, 1])])
                .collect();
            let mut next = Vec::new();
            let phase = stream_phase(sys, &blocks, &engine, self.params.tile, None, |_, bufs| {
                next.extend(kernels::bfs_expand(&bufs[0], level, &mut levels));
            })?;
            phases.push(phase);
            next.sort_unstable();
            frontier = next;
            level += 1;
        }
        let checksum = kernels::checksum_u64(levels.iter().map(|&l| l as u64));
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &phases, checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        let levels = self.compute(&self.graph());
        kernels::checksum_u64(levels.iter().map(|&l| l as u64))
    }
}

/// Single-source shortest paths via Bellman-Ford over weight sub-blocks.
#[derive(Debug, Clone)]
pub struct Sssp {
    params: WorkloadParams,
}

impl Sssp {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        Sssp { params }
    }

    fn weights(&self) -> Vec<i32> {
        let adj = data::adjacency_u8(self.params.n, edges_for(self.params.n), self.params.seed);
        data::weights_i32(&adj, self.params.n, self.params.seed ^ 0x55AA)
    }

    fn compute(&self, w: &[i32]) -> Vec<i64> {
        let n = self.params.n as usize;
        let t = self.params.tile as usize;
        let tiles = n / t;
        let mut dist = vec![i64::MAX; n];
        dist[0] = 0;
        for _ in 0..MAX_SSSP_ROUNDS {
            let mut changed = false;
            for rp in 0..tiles {
                for cb in 0..tiles {
                    let mut tile = Vec::with_capacity(t * t);
                    for r in 0..t {
                        let row = (rp * t + r) * n + cb * t;
                        tile.extend_from_slice(&w[row..row + t]);
                    }
                    changed |= kernels::bellman_ford_tile(&tile, t, rp * t, cb * t, &mut dist);
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }
}

impl Workload for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn category(&self) -> &'static str {
        "Graph Traversal"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let n = self.params.n;
        let t = self.params.tile;
        let ts = t as usize;
        let tiles = n / t;
        let shape = Shape::new([n, n]);
        let w = self.weights();
        let id = create_full(sys, &shape, ElementType::I32, &data::i32_bytes(&w))?;

        let engine = self.params.host_engine();
        let ns = n as usize;
        let _ = ns;
        let mut dist = vec![i64::MAX; n as usize];
        dist[0] = 0;
        let mut phases = Vec::new();
        for _ in 0..MAX_SSSP_ROUNDS {
            let blocks: Vec<BlockReads> = (0..tiles)
                .flat_map(|rp| {
                    (0..tiles).map(move |cb| -> BlockReads {
                        vec![(id, Shape::new([n, n]), vec![cb, rp], vec![t, t])]
                    })
                })
                .collect();
            let mut changed = false;
            let phase = stream_phase(sys, &blocks, &engine, t, None, |idx, bufs| {
                let rp = idx as u64 / tiles;
                let cb = idx as u64 % tiles;
                let tile = data::i32_from_bytes(&bufs[0]);
                changed |= kernels::bellman_ford_tile(
                    &tile,
                    ts,
                    (rp * t) as usize,
                    (cb * t) as usize,
                    &mut dist,
                );
            })?;
            phases.push(phase);
            if !changed {
                break;
            }
        }
        let checksum = kernels::checksum_u64(dist.iter().map(|&d| d as u64));
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &phases, checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        let dist = self.compute(&self.weights());
        kernels::checksum_u64(dist.iter().map(|&d| d as u64))
    }
}

/// PageRank power iteration over link-matrix sub-blocks.
#[derive(Debug, Clone)]
pub struct PageRank {
    params: WorkloadParams,
}

impl PageRank {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid.
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        PageRank { params }
    }

    fn links(&self) -> Vec<f32> {
        let adj = data::adjacency_u8(self.params.n, edges_for(self.params.n), self.params.seed);
        data::pagerank_links_f32(&adj, self.params.n)
    }

    fn damp(next: &[f64], n: usize) -> Vec<f32> {
        let damping = 0.85f64;
        let base = (1.0 - damping) / n as f64;
        next.iter().map(|&v| (base + damping * v) as f32).collect()
    }

    fn compute(&self, links: &[f32]) -> Vec<f32> {
        let n = self.params.n as usize;
        let t = self.params.tile as usize;
        let tiles = n / t;
        let mut rank = vec![1.0f32 / n as f32; n];
        for _ in 0..self.params.iterations {
            let mut next = vec![0.0f64; n];
            for rp in 0..tiles {
                for cb in 0..tiles {
                    let mut tile = Vec::with_capacity(t * t);
                    for r in 0..t {
                        let row = (rp * t + r) * n + cb * t;
                        tile.extend_from_slice(&links[row..row + t]);
                    }
                    kernels::pagerank_tile(&tile, t, rp * t, cb * t, &rank, &mut next);
                }
            }
            rank = Self::damp(&next, n);
        }
        rank
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn category(&self) -> &'static str {
        "Graph"
    }

    fn kernel_tile(&self) -> Vec<u64> {
        vec![self.params.tile, self.params.tile]
    }

    fn run(&self, sys: &mut dyn StorageFrontEnd) -> Result<WorkloadRun, SystemError> {
        let n = self.params.n;
        let t = self.params.tile;
        let ts = t as usize;
        let tiles = n / t;
        let shape = Shape::new([n, n]);
        let links = self.links();
        let id = create_full(sys, &shape, ElementType::F32, &data::f32_bytes(&links))?;

        let engine = self.params.cuda_engine();
        let ns = n as usize;
        let mut rank = vec![1.0f32 / n as f32; ns];
        let mut phases = Vec::new();
        for _ in 0..self.params.iterations {
            let blocks: Vec<BlockReads> = (0..tiles)
                .flat_map(|rp| {
                    (0..tiles).map(move |cb| -> BlockReads {
                        vec![(id, Shape::new([n, n]), vec![cb, rp], vec![t, t])]
                    })
                })
                .collect();
            let mut next = vec![0.0f64; ns];
            let phase = stream_phase(
                sys,
                &blocks,
                &engine,
                t,
                Some(LinkConfig::pcie3_x16()),
                |idx, bufs| {
                    let rp = idx as u64 / tiles;
                    let cb = idx as u64 % tiles;
                    let tile = data::f32_from_bytes(&bufs[0]);
                    kernels::pagerank_tile(
                        &tile,
                        ts,
                        (rp * t) as usize,
                        (cb * t) as usize,
                        &rank,
                        &mut next,
                    );
                },
            )?;
            phases.push(phase);
            rank = Self::damp(&next, ns);
        }
        let checksum = kernels::checksum_f32(&rank);
        Ok(
            WorkloadRun::from_phases(self.name(), sys.name(), &phases, checksum)
                .with_fault_counters(&sys.stats()),
        )
    }

    fn reference_checksum(&self) -> u64 {
        kernels::checksum_f32(&self.compute(&self.links()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nds_system::{BaselineSystem, SoftwareNds, SystemConfig};

    #[test]
    fn bfs_matches_reference_and_visits_all_reachable() {
        let bfs = Bfs::new(WorkloadParams::tiny_test(11));
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let run = bfs.run(&mut sys).unwrap();
        assert_eq!(run.checksum, bfs.reference_checksum());
        // The ring edge guarantees every node is reachable: n row reads.
        assert_eq!(run.bytes, 256 * 256);
    }

    #[test]
    fn sssp_matches_reference() {
        let sssp = Sssp::new(WorkloadParams::tiny_test(12));
        let mut sys = SoftwareNds::new(SystemConfig::small_test());
        let run = sssp.run(&mut sys).unwrap();
        assert_eq!(run.checksum, sssp.reference_checksum());
    }

    #[test]
    fn sssp_distances_are_finite() {
        let sssp = Sssp::new(WorkloadParams::tiny_test(13));
        let dist = sssp.compute(&sssp.weights());
        assert!(
            dist.iter().all(|&d| d != i64::MAX),
            "ring keeps all reachable"
        );
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn pagerank_matches_reference_and_sums_to_one() {
        let pr = PageRank::new(WorkloadParams::tiny_test(14));
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let run = pr.run(&mut sys).unwrap();
        assert_eq!(run.checksum, pr.reference_checksum());
        let rank = pr.compute(&pr.links());
        let total: f32 = rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "rank mass ≈ 1, got {total}");
    }
}
