//! Seeded dataset generators, mirroring the artifact's generators
//! (appendix A.3.4): matrix, tensor, clustering, graph, and pagerank data in
//! binary-encoded form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense random `width × height` f32 matrix (row-major, x fastest) —
//  input for Block-GEMM, Conv2D, and Hotspot.
pub fn matrix_f32(width: u64, height: u64, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..width * height)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect()
}

/// A dense random `side³` f32 tensor (x fastest) — input for TTV and TC.
pub fn tensor_f32(side: u64, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..side * side * side)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect()
}

/// `points × attrs` clustering data in `[0, 1)` — shared input of K-Means
/// and KNN, as in the paper (§6.2 pairs their inputs).
pub fn clustering_f32(points: u64, attrs: u64, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..points * attrs).map(|_| rng.gen::<f32>()).collect()
}

/// A random directed graph as a binary adjacency matrix with `nodes²`
/// entries and approximately `edges` ones — shared input of BFS and SSSP.
/// Every node gets at least one outgoing edge so traversals make progress.
pub fn adjacency_u8(nodes: u64, edges: u64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = vec![0u8; (nodes * nodes) as usize];
    // A ring guarantees connectivity (i → i+1), matching generators that
    // avoid unreachable nodes dominating run time.
    for i in 0..nodes {
        let j = (i + 1) % nodes;
        m[(i * nodes + j) as usize] = 1;
    }
    let mut placed = nodes;
    while placed < edges {
        let i = rng.gen_range(0..nodes);
        let j = rng.gen_range(0..nodes);
        let cell = &mut m[(i * nodes + j) as usize];
        if *cell == 0 && i != j {
            *cell = 1;
            placed += 1;
        }
    }
    m
}

/// Edge weights for SSSP: weight `w > 0` where an edge exists, `i32::MAX`
/// (no edge) elsewhere. Layout matches [`adjacency_u8`].
pub fn weights_i32(adjacency: &[u8], _nodes: u64, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    adjacency
        .iter()
        .map(|&a| {
            if a != 0 {
                rng.gen_range(1..100)
            } else {
                i32::MAX
            }
        })
        .collect()
}

/// A column-stochastic-ish link matrix for PageRank: the adjacency matrix
/// normalized per source row into f32 transition shares.
pub fn pagerank_links_f32(adjacency: &[u8], nodes: u64) -> Vec<f32> {
    let mut links = vec![0.0f32; adjacency.len()];
    for i in 0..nodes as usize {
        let row = &adjacency[i * nodes as usize..(i + 1) * nodes as usize];
        let degree = row.iter().filter(|&&a| a != 0).count().max(1) as f32;
        for (j, &a) in row.iter().enumerate() {
            if a != 0 {
                links[i * nodes as usize + j] = 1.0 / degree;
            }
        }
    }
    links
}

/// Reinterprets an f32 slice as little-endian bytes (the generators write
/// binary-encoded files, A.3.4).
pub fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Parses little-endian bytes back to f32.
#[allow(clippy::expect_used)] // chunks_exact(4) yields 4-byte slices, try_into cannot fail
pub fn f32_from_bytes(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunks")))
        .collect()
}

/// Reinterprets an i32 slice as little-endian bytes.
pub fn i32_bytes(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Parses little-endian bytes back to i32.
#[allow(clippy::expect_used)] // chunks_exact(4) yields 4-byte slices, try_into cannot fail
pub fn i32_from_bytes(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().expect("4-byte chunks")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(matrix_f32(16, 16, 9), matrix_f32(16, 16, 9));
        assert_eq!(tensor_f32(8, 9), tensor_f32(8, 9));
        assert_eq!(adjacency_u8(32, 96, 9), adjacency_u8(32, 96, 9));
        assert_ne!(matrix_f32(16, 16, 9), matrix_f32(16, 16, 10));
    }

    #[test]
    fn adjacency_has_requested_density_and_ring() {
        let nodes = 64;
        let m = adjacency_u8(nodes, 256, 3);
        let ones: u64 = m.iter().map(|&b| b as u64).sum();
        assert_eq!(ones, 256);
        for i in 0..nodes {
            assert_eq!(
                m[(i * nodes + (i + 1) % nodes) as usize],
                1,
                "ring edge {i}"
            );
        }
    }

    #[test]
    fn weights_follow_adjacency() {
        let m = adjacency_u8(16, 48, 4);
        let w = weights_i32(&m, 16, 5);
        for (a, w) in m.iter().zip(&w) {
            if *a != 0 {
                assert!((1..100).contains(w));
            } else {
                assert_eq!(*w, i32::MAX);
            }
        }
    }

    #[test]
    fn pagerank_rows_sum_to_one() {
        let nodes = 32;
        let m = adjacency_u8(nodes, 128, 6);
        let links = pagerank_links_f32(&m, nodes);
        for i in 0..nodes as usize {
            let sum: f32 = links[i * nodes as usize..(i + 1) * nodes as usize]
                .iter()
                .sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn byte_round_trips() {
        let f = vec![1.5f32, -2.25, 0.0];
        assert_eq!(f32_from_bytes(&f32_bytes(&f)), f);
        let i = vec![7i32, -9, i32::MAX];
        assert_eq!(i32_from_bytes(&i32_bytes(&i)), i);
    }
}
