//! Property tests of the WFQ admission scheduler: the fairness and
//! ordering guarantees the multi-tenant traffic engine relies on, checked
//! against randomized flow populations and enqueue sequences.

// Test helpers outside #[test] fns aren't covered by allow-unwrap-in-tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use nds_interconnect::WfqScheduler;

/// A randomized backlogged scenario: per-flow weights and a shared
/// request cost range.
#[derive(Debug, Clone)]
struct Backlog {
    weights: Vec<u64>,
    cost: u64,
    rounds: usize,
}

fn backlog() -> impl Strategy<Value = Backlog> {
    (
        prop::collection::vec(1u64..8, 2..6),
        64u64..8192,
        8usize..40,
    )
        .prop_map(|(weights, cost, rounds)| Backlog {
            weights,
            cost,
            rounds,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work conservation: as long as anything is queued, `pop` serves it;
    /// the scheduler never "idles" a backlogged queue, and everything
    /// enqueued eventually drains in full.
    #[test]
    fn backlogged_queue_always_serves(b in backlog()) {
        let mut wfq = WfqScheduler::new();
        for (f, &w) in b.weights.iter().enumerate() {
            wfq.register(f as u32, w);
        }
        let mut enqueued = 0u64;
        for r in 0..b.rounds {
            for f in 0..b.weights.len() as u32 {
                wfq.enqueue(f, b.cost, (r, f)).unwrap();
                enqueued += 1;
            }
            // Interleave partial drains: the queue must always yield.
            if r % 2 == 0 {
                prop_assert!(wfq.pop().is_some(), "backlogged pop returned None");
                enqueued -= 1;
            }
        }
        let mut drained = 0u64;
        while wfq.pop().is_some() {
            drained += 1;
        }
        prop_assert_eq!(drained, enqueued, "requests lost or duplicated");
        prop_assert!(wfq.is_empty());
    }

    /// Determinism: the same enqueue sequence pops in the same order, and
    /// the order is a pure function of (finish tag, flow, seq) — repeated
    /// runs agree element-for-element.
    #[test]
    fn schedule_is_reproducible(b in backlog()) {
        let run = || {
            let mut wfq = WfqScheduler::new();
            for (f, &w) in b.weights.iter().enumerate() {
                wfq.register(f as u32, w);
            }
            for r in 0..b.rounds {
                for f in 0..b.weights.len() as u32 {
                    wfq.enqueue(f, b.cost + (r as u64 % 3), (r, f)).unwrap();
                }
            }
            std::iter::from_fn(|| wfq.pop()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Weighted sharing: with every flow continuously backlogged on
    /// equal-cost requests, each flow's share of the first `K` service
    /// slots tracks its weight share within one request per flow (the
    /// SCFQ per-flow lag bound).
    #[test]
    fn service_shares_track_weights(b in backlog()) {
        let mut wfq = WfqScheduler::new();
        let weight_sum: u64 = b.weights.iter().sum();
        for (f, &w) in b.weights.iter().enumerate() {
            wfq.register(f as u32, w);
        }
        // Enough backlog that no flow runs dry inside the observation
        // window: `rounds` requests per unit of weight.
        for r in 0..b.rounds as u64 {
            for (f, &w) in b.weights.iter().enumerate() {
                for _ in 0..w {
                    wfq.enqueue(f as u32, b.cost, r).unwrap();
                }
            }
        }
        let window = weight_sum * b.rounds as u64 / 2;
        let mut served = vec![0u64; b.weights.len()];
        for _ in 0..window {
            let (f, _) = wfq.pop().expect("backlogged");
            served[f as usize] += 1;
        }
        for (f, &w) in b.weights.iter().enumerate() {
            let expected = window * w / weight_sum;
            let got = served[f];
            let slack = 1 + w; // SCFQ lag: ≤ one request per weight unit
            prop_assert!(
                got + slack >= expected && got <= expected + slack,
                "flow {f} (weight {w}): served {got}, expected ~{expected} of {window}"
            );
        }
    }

    /// Re-registration mid-run: changing a flow's weight applies to
    /// *subsequent* enqueues only. Already-queued requests keep their
    /// finish tags, so a scheduler re-registered between enqueue and drain
    /// pops in exactly the order of an untouched clone.
    #[test]
    fn reregistration_leaves_queued_tags_alone(
        b in backlog(),
        target in 0usize..6,
        new_weight in 1u64..512,
    ) {
        let mut wfq = WfqScheduler::new();
        for (f, &w) in b.weights.iter().enumerate() {
            wfq.register(f as u32, w);
        }
        for r in 0..b.rounds {
            for f in 0..b.weights.len() as u32 {
                wfq.enqueue(f, b.cost + r as u64, (r, f)).unwrap();
            }
        }
        let mut untouched = wfq.clone();
        let target = (target % b.weights.len()) as u32;
        wfq.register(target, new_weight);
        prop_assert_eq!(wfq.weight(target), Some(new_weight.max(1)));
        let a = std::iter::from_fn(|| wfq.pop()).collect::<Vec<_>>();
        let b = std::iter::from_fn(|| untouched.pop()).collect::<Vec<_>>();
        prop_assert_eq!(a, b, "re-registration retagged queued requests");
    }

    /// Re-registration mid-run keeps the flow's `last_finish`: a weight
    /// change is not a debt reset. While a flow is backlogged, its next
    /// enqueue must start at its previous finish tag, so per-flow FIFO
    /// order survives an arbitrary weight change — even one that makes the
    /// new request's own service interval tiny. The scheduler's virtual
    /// time is monotone throughout.
    #[test]
    fn reregistration_keeps_last_finish_and_fifo(
        b in backlog(),
        reweights in prop::collection::vec((0usize..6, 1u64..1024), 1..8),
    ) {
        let mut wfq = WfqScheduler::new();
        let flows = b.weights.len();
        for (f, &w) in b.weights.iter().enumerate() {
            wfq.register(f as u32, w);
        }
        // Build a backlog, re-registering flows between rounds so weight
        // changes land while earlier requests are still queued.
        let mut per_flow_seq = vec![0u64; flows];
        let mut enqueued = 0u64;
        for (r, &(t, w)) in reweights.iter().enumerate() {
            for f in 0..flows as u32 {
                wfq.enqueue(f, b.cost, (f, per_flow_seq[f as usize])).unwrap();
                per_flow_seq[f as usize] += 1;
                enqueued += 1;
            }
            wfq.register((t % flows) as u32, w);
            // A request enqueued immediately after the weight change must
            // still start at the flow's last finish tag, never earlier.
            let f = ((t + r) % flows) as u32;
            wfq.enqueue(f, b.cost, (f, per_flow_seq[f as usize])).unwrap();
            per_flow_seq[f as usize] += 1;
            enqueued += 1;
        }
        // Drain: virtual time monotone, per-flow payloads strictly FIFO,
        // nothing lost.
        let mut last_vt = wfq.virtual_now();
        let mut next_expected = vec![0u64; flows];
        let mut drained = 0u64;
        while let Some((f, (pf, seq))) = wfq.pop() {
            prop_assert_eq!(f, pf);
            prop_assert!(
                wfq.virtual_now() >= last_vt,
                "virtual time moved backward across a pop"
            );
            last_vt = wfq.virtual_now();
            prop_assert_eq!(
                seq, next_expected[f as usize],
                "flow {} served out of FIFO order after a weight change", f
            );
            next_expected[f as usize] += 1;
            drained += 1;
        }
        prop_assert_eq!(drained, enqueued);
    }

    /// A flow re-registered to a huge weight while backlogged cannot jump
    /// the queue: its *next* request still starts behind its own backlog
    /// (`last_finish` kept), so an idle competitor enqueued at the current
    /// virtual time is served first.
    #[test]
    fn upweighted_backlog_does_not_preempt_idle_flow(
        backlog_len in 2usize..24,
        cost in 64u64..4096,
        boost in 8u64..u64::MAX,
    ) {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 1);
        for i in 0..backlog_len {
            wfq.enqueue(0, cost, i).unwrap();
        }
        // Mid-run weight change on the backlogged flow, then one more
        // request on it and one on the idle flow.
        wfq.register(0, boost);
        wfq.enqueue(0, cost, backlog_len).unwrap();
        wfq.enqueue(1, cost, usize::MAX).unwrap();
        let order = std::iter::from_fn(|| wfq.pop()).collect::<Vec<_>>();
        let pos_new = order.iter().position(|&(f, p)| f == 0 && p == backlog_len).unwrap();
        let pos_idle = order.iter().position(|&(f, _)| f == 1).unwrap();
        prop_assert!(
            pos_idle < pos_new,
            "boosted flow's new request (pos {pos_new}) preempted the idle \
             flow (pos {pos_idle}): last_finish was not preserved"
        );
        // And FIFO within the boosted flow still holds.
        let flow0: Vec<usize> = order.iter().filter(|&&(f, _)| f == 0).map(|&(_, p)| p).collect();
        prop_assert_eq!(flow0, (0..=backlog_len).collect::<Vec<_>>());
    }

    /// No starvation: even a weight-1 flow against arbitrarily heavy
    /// competitors is served within one full round of the others' backlog.
    #[test]
    fn light_flow_is_not_starved(heavy in 1u64..64, backlog_len in 1usize..32) {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, heavy);
        for i in 0..backlog_len {
            wfq.enqueue(1, 4096, i).unwrap();
        }
        wfq.enqueue(0, 4096, usize::MAX).unwrap();
        let position = std::iter::from_fn(|| wfq.pop())
            .position(|(f, _)| f == 0)
            .expect("light flow served");
        // Finish tag of the light request is bounded by one cost unit,
        // so at most `heavy` of the competitor's requests precede it.
        prop_assert!(
            position as u64 <= heavy,
            "light flow served at position {position}, weight ratio {heavy}"
        );
    }
}
