//! The on-wire encoding of the extended NVMe command set (§5.3.1).
//!
//! Per the paper: an extended command flags **a reserved bit in the first
//! 64-bit command word** of the standard 64-byte NVMe submission entry; its
//! **second 64-bit word points to a memory page** carrying the
//! multi-dimensional arguments (here the page travels inline). With 4 KB
//! pages, "each extended command can support coordinates up to 32
//! dimensions and 2²⁴ elements in each dimension" — limits the codec
//! enforces on both encode and decode.
//!
//! Layout of the 64-byte submission entry (little-endian):
//!
//! ```text
//! bytes 0..8    word0: opcode (byte 0) | EXT bit (bit 63)
//! bytes 8..16   word1: argument-page presence flag (1 when a page follows)
//! bytes 16..24  conventional: LBA        extended: space id
//! bytes 24..32  conventional: page count extended: dimension count
//! bytes 32..64  reserved (zero)
//! ```
//!
//! The 4 KB argument page holds, per dimension, a `(coordinate, extent)`
//! pair of u64s for read/write commands, or a single extent for
//! `open_space` (whose element size rides in the entry's reserved area).

use crate::command::{NvmeCommand, SpaceId, MAX_DIMENSIONS, MAX_ELEMENTS_PER_DIM};

/// Size of one submission-queue entry.
pub const ENTRY_BYTES: usize = 64;
/// Size of the argument page extended commands carry.
pub const ARG_PAGE_BYTES: usize = 4096;

const EXT_BIT: u64 = 1 << 63;

const OP_READ: u8 = 0x02;
const OP_WRITE: u8 = 0x01;
const OP_OPEN_SPACE: u8 = 0x81;
const OP_CLOSE_SPACE: u8 = 0x82;
const OP_DELETE_SPACE: u8 = 0x83;
const OP_NDS_READ: u8 = 0x8A;
const OP_NDS_WRITE: u8 = 0x8B;

/// A command as it crosses the interface: the 64-byte entry plus, for
/// extended commands, the 4 KB argument page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCommand {
    /// The submission-queue entry.
    pub entry: [u8; ENTRY_BYTES],
    /// The argument page, present iff the EXT bit is set and the command
    /// carries multi-dimensional arguments.
    pub arg_page: Option<Box<[u8; ARG_PAGE_BYTES]>>,
}

impl WireCommand {
    /// Total bytes this command occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        ENTRY_BYTES as u64 + self.arg_page.as_ref().map_or(0, |_| ARG_PAGE_BYTES as u64)
    }
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The opcode byte is not part of the (extended) command set.
    UnknownOpcode(u8),
    /// The EXT bit and the opcode class disagree.
    ExtensionBitMismatch,
    /// An extended command announced an argument page but none was present
    /// (or vice versa).
    MissingArgPage,
    /// The dimension count exceeds [`MAX_DIMENSIONS`] or is zero where
    /// dimensions are required.
    BadDimensionCount(u64),
    /// A dimension extent exceeds 2²⁴ or is zero.
    BadExtent(u64),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::ExtensionBitMismatch => {
                write!(f, "extension bit does not match the opcode class")
            }
            WireError::MissingArgPage => write!(f, "argument page missing or unexpected"),
            WireError::BadDimensionCount(n) => {
                write!(f, "dimension count {n} outside 1..={MAX_DIMENSIONS}")
            }
            WireError::BadExtent(e) => {
                write!(f, "extent {e} outside 1..={MAX_ELEMENTS_PER_DIM}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Writes `value` little-endian at `offset`. Panic-free by construction:
/// the zip stops at whichever side runs out, and every caller passes an
/// in-bounds constant offset so nothing is ever truncated.
fn put_u64(buf: &mut [u8], offset: usize, value: u64) {
    for (dst, src) in buf.iter_mut().skip(offset).zip(value.to_le_bytes()) {
        *dst = src;
    }
}

/// Reads a little-endian u64 at `offset`; bytes past the buffer read as
/// zero (again statically impossible for the codec's constant offsets).
fn get_u64(buf: &[u8], offset: usize) -> u64 {
    let mut bytes = [0u8; 8];
    for (dst, src) in bytes.iter_mut().zip(buf.iter().skip(offset)) {
        *dst = *src;
    }
    u64::from_le_bytes(bytes)
}

/// Encodes a validated command into its wire representation.
///
/// # Errors
///
/// Propagates [`NvmeCommand::validate`] failures as [`WireError`]s
/// (dimension/extent limits).
///
/// # Example
///
/// ```
/// use nds_interconnect::{wire, NvmeCommand, SpaceId};
///
/// let cmd = NvmeCommand::NdsRead {
///     space: SpaceId(3),
///     coord: vec![1, 2],
///     sub_dims: vec![64, 64],
/// };
/// let wired = wire::encode(&cmd).unwrap();
/// assert_eq!(wired.wire_bytes(), 64 + 4096);
/// assert_eq!(wire::decode(&wired).unwrap(), cmd);
/// ```
pub fn encode(cmd: &NvmeCommand) -> Result<WireCommand, WireError> {
    if let Err(e) = cmd.validate() {
        return Err(match e {
            crate::command::CommandError::TooManyDimensions(n) => {
                WireError::BadDimensionCount(n as u64)
            }
            crate::command::CommandError::DimensionTooLarge(d) => WireError::BadExtent(d),
            crate::command::CommandError::ZeroExtent => WireError::BadExtent(0),
            crate::command::CommandError::MismatchedArity { coord, .. } => {
                WireError::BadDimensionCount(coord as u64)
            }
        });
    }
    let mut entry = [0u8; ENTRY_BYTES];
    let mut arg_page: Option<Box<[u8; ARG_PAGE_BYTES]>> = None;

    match cmd {
        NvmeCommand::Read { lba, pages } | NvmeCommand::Write { lba, pages } => {
            let op = if matches!(cmd, NvmeCommand::Read { .. }) {
                OP_READ
            } else {
                OP_WRITE
            };
            put_u64(&mut entry, 0, u64::from(op));
            put_u64(&mut entry, 16, *lba);
            put_u64(&mut entry, 24, *pages);
        }
        NvmeCommand::OpenSpace { dims, element_size } => {
            put_u64(&mut entry, 0, u64::from(OP_OPEN_SPACE) | EXT_BIT);
            put_u64(&mut entry, 8, 1);
            put_u64(&mut entry, 24, dims.len() as u64);
            put_u64(&mut entry, 32, u64::from(*element_size));
            let mut page = Box::new([0u8; ARG_PAGE_BYTES]);
            for (i, &d) in dims.iter().enumerate() {
                put_u64(page.as_mut_slice(), i * 8, d);
            }
            arg_page = Some(page);
        }
        NvmeCommand::CloseSpace { space } | NvmeCommand::DeleteSpace { space } => {
            let op = if matches!(cmd, NvmeCommand::CloseSpace { .. }) {
                OP_CLOSE_SPACE
            } else {
                OP_DELETE_SPACE
            };
            put_u64(&mut entry, 0, u64::from(op) | EXT_BIT);
            put_u64(&mut entry, 16, space.0);
        }
        NvmeCommand::NdsRead {
            space,
            coord,
            sub_dims,
        }
        | NvmeCommand::NdsWrite {
            space,
            coord,
            sub_dims,
        } => {
            let op = if matches!(cmd, NvmeCommand::NdsRead { .. }) {
                OP_NDS_READ
            } else {
                OP_NDS_WRITE
            };
            put_u64(&mut entry, 0, u64::from(op) | EXT_BIT);
            put_u64(&mut entry, 8, 1);
            put_u64(&mut entry, 16, space.0);
            put_u64(&mut entry, 24, coord.len() as u64);
            let mut page = Box::new([0u8; ARG_PAGE_BYTES]);
            // validate() guarantees equal arity; zip makes it panic-free.
            for (i, (&c, &d)) in coord.iter().zip(sub_dims.iter()).enumerate() {
                put_u64(page.as_mut_slice(), i * 16, c);
                put_u64(page.as_mut_slice(), i * 16 + 8, d);
            }
            arg_page = Some(page);
        }
    }
    Ok(WireCommand { entry, arg_page })
}

/// Decodes a wire command back into its structured form.
///
/// # Errors
///
/// Any [`WireError`] for malformed entries (unknown opcode, wrong EXT bit,
/// missing argument page, out-of-range dimensions/extents).
pub fn decode(wired: &WireCommand) -> Result<NvmeCommand, WireError> {
    let word0 = get_u64(&wired.entry, 0);
    let opcode = (word0 & 0xFF) as u8;
    let ext = word0 & EXT_BIT != 0;
    let wants_page = get_u64(&wired.entry, 8) == 1;
    if wants_page != wired.arg_page.is_some() {
        return Err(WireError::MissingArgPage);
    }

    let check_dims = |n: u64| -> Result<usize, WireError> {
        if n == 0 || n > MAX_DIMENSIONS as u64 {
            Err(WireError::BadDimensionCount(n))
        } else {
            Ok(n as usize)
        }
    };
    let check_extent = |e: u64| -> Result<u64, WireError> {
        if e == 0 || e > MAX_ELEMENTS_PER_DIM {
            Err(WireError::BadExtent(e))
        } else {
            Ok(e)
        }
    };

    match opcode {
        OP_READ | OP_WRITE => {
            if ext {
                return Err(WireError::ExtensionBitMismatch);
            }
            let lba = get_u64(&wired.entry, 16);
            let pages = get_u64(&wired.entry, 24);
            if pages == 0 {
                return Err(WireError::BadExtent(0));
            }
            Ok(if opcode == OP_READ {
                NvmeCommand::Read { lba, pages }
            } else {
                NvmeCommand::Write { lba, pages }
            })
        }
        OP_OPEN_SPACE => {
            if !ext {
                return Err(WireError::ExtensionBitMismatch);
            }
            let page = wired.arg_page.as_ref().ok_or(WireError::MissingArgPage)?;
            let ndims = check_dims(get_u64(&wired.entry, 24))?;
            let element_size = get_u64(&wired.entry, 32) as u32;
            if element_size == 0 {
                return Err(WireError::BadExtent(0));
            }
            let mut dims = Vec::with_capacity(ndims);
            for i in 0..ndims {
                dims.push(check_extent(get_u64(page.as_slice(), i * 8))?);
            }
            Ok(NvmeCommand::OpenSpace { dims, element_size })
        }
        OP_CLOSE_SPACE | OP_DELETE_SPACE => {
            if !ext {
                return Err(WireError::ExtensionBitMismatch);
            }
            let space = SpaceId(get_u64(&wired.entry, 16));
            Ok(if opcode == OP_CLOSE_SPACE {
                NvmeCommand::CloseSpace { space }
            } else {
                NvmeCommand::DeleteSpace { space }
            })
        }
        OP_NDS_READ | OP_NDS_WRITE => {
            if !ext {
                return Err(WireError::ExtensionBitMismatch);
            }
            let page = wired.arg_page.as_ref().ok_or(WireError::MissingArgPage)?;
            let space = SpaceId(get_u64(&wired.entry, 16));
            let ndims = check_dims(get_u64(&wired.entry, 24))?;
            let mut coord = Vec::with_capacity(ndims);
            let mut sub_dims = Vec::with_capacity(ndims);
            for i in 0..ndims {
                coord.push(get_u64(page.as_slice(), i * 16));
                sub_dims.push(check_extent(get_u64(page.as_slice(), i * 16 + 8))?);
            }
            Ok(if opcode == OP_NDS_READ {
                NvmeCommand::NdsRead {
                    space,
                    coord,
                    sub_dims,
                }
            } else {
                NvmeCommand::NdsWrite {
                    space,
                    coord,
                    sub_dims,
                }
            })
        }
        other => Err(WireError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cmd: NvmeCommand) {
        let wired = encode(&cmd).expect("encode");
        assert_eq!(decode(&wired).expect("decode"), cmd);
    }

    #[test]
    fn all_commands_round_trip() {
        round_trip(NvmeCommand::Read { lba: 42, pages: 7 });
        round_trip(NvmeCommand::Write { lba: 0, pages: 1 });
        round_trip(NvmeCommand::OpenSpace {
            dims: vec![8192, 8192, 4],
            element_size: 4,
        });
        round_trip(NvmeCommand::CloseSpace { space: SpaceId(9) });
        round_trip(NvmeCommand::DeleteSpace { space: SpaceId(1) });
        round_trip(NvmeCommand::NdsRead {
            space: SpaceId(3),
            coord: vec![1, 0, 2],
            sub_dims: vec![128, 128, 1],
        });
        round_trip(NvmeCommand::NdsWrite {
            space: SpaceId(3),
            coord: vec![0; MAX_DIMENSIONS],
            sub_dims: vec![MAX_ELEMENTS_PER_DIM; MAX_DIMENSIONS],
        });
    }

    #[test]
    fn conventional_commands_carry_no_page() {
        let wired = encode(&NvmeCommand::Read { lba: 1, pages: 2 }).unwrap();
        assert!(wired.arg_page.is_none());
        assert_eq!(wired.wire_bytes(), 64);
    }

    #[test]
    fn extension_bit_distinguishes_classes() {
        let conv = encode(&NvmeCommand::Read { lba: 0, pages: 1 }).unwrap();
        assert_eq!(get_u64(&conv.entry, 0) & EXT_BIT, 0);
        let ext = encode(&NvmeCommand::DeleteSpace { space: SpaceId(0) }).unwrap();
        assert_ne!(get_u64(&ext.entry, 0) & EXT_BIT, 0);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut entry = [0u8; ENTRY_BYTES];
        entry[0] = 0x77;
        let err = decode(&WireCommand {
            entry,
            arg_page: None,
        })
        .unwrap_err();
        assert_eq!(err, WireError::UnknownOpcode(0x77));
    }

    #[test]
    fn flipped_extension_bit_rejected() {
        let mut wired = encode(&NvmeCommand::Read { lba: 0, pages: 1 }).unwrap();
        // Set the EXT bit on a conventional opcode.
        let word0 = get_u64(&wired.entry, 0) | EXT_BIT;
        put_u64(&mut wired.entry, 0, word0);
        assert_eq!(decode(&wired).unwrap_err(), WireError::ExtensionBitMismatch);
    }

    #[test]
    fn missing_arg_page_rejected() {
        let mut wired = encode(&NvmeCommand::NdsRead {
            space: SpaceId(1),
            coord: vec![0],
            sub_dims: vec![4],
        })
        .unwrap();
        wired.arg_page = None;
        assert_eq!(decode(&wired).unwrap_err(), WireError::MissingArgPage);
    }

    #[test]
    fn corrupt_extent_rejected() {
        let mut wired = encode(&NvmeCommand::NdsRead {
            space: SpaceId(1),
            coord: vec![0],
            sub_dims: vec![4],
        })
        .unwrap();
        // Corrupt the extent beyond 2^24.
        let page = wired.arg_page.as_mut().expect("page");
        put_u64(page.as_mut_slice(), 8, MAX_ELEMENTS_PER_DIM + 5);
        assert!(matches!(decode(&wired), Err(WireError::BadExtent(_))));
    }

    #[test]
    fn oversized_dimension_count_rejected_on_decode() {
        let mut wired = encode(&NvmeCommand::NdsRead {
            space: SpaceId(1),
            coord: vec![0],
            sub_dims: vec![4],
        })
        .unwrap();
        put_u64(&mut wired.entry, 24, 33);
        assert_eq!(
            decode(&wired).unwrap_err(),
            WireError::BadDimensionCount(33)
        );
    }

    #[test]
    fn encode_enforces_limits() {
        let err = encode(&NvmeCommand::OpenSpace {
            dims: vec![2; MAX_DIMENSIONS + 1],
            element_size: 4,
        })
        .unwrap_err();
        assert!(matches!(err, WireError::BadDimensionCount(_)));
    }
}
