//! The NVMe command set with the NDS extension (§5.3.1).
//!
//! An extended NVMe command flags a reserved bit in its first 64-bit word;
//! its second word points to a host memory page carrying the
//! multi-dimensional arguments (coordinates and sub-dimensionality for
//! read/write; the dimension list for `open_space`). The paper caps both at
//! 32 dimensions with 2²⁴ elements per dimension — one 4 KB page is enough
//! to carry them. Conventional commands address a one-dimensional LBA space
//! and pass through unchanged, which is how NDS stays compatible with
//! existing NVMe software.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of dimensions an extended command can describe (§5.3.1).
pub const MAX_DIMENSIONS: usize = 32;

/// Maximum elements per dimension an extended command can describe (2²⁴).
pub const MAX_ELEMENTS_PER_DIM: u64 = 1 << 24;

/// Identifier of an open NDS address space, as returned by `open_space`.
///
/// The paper's `open_space` returns a 64-bit identifier plus a dynamic space
/// ID that distinguishes per-application *views*; we fold both into one
/// opaque 64-bit handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpaceId(pub u64);

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space#{}", self.0)
    }
}

/// A command crossing the host↔device interface.
///
/// Conventional commands (`Read`/`Write`) address the linear LBA space;
/// extended commands (`Nds*`, `OpenSpace`, …) carry multi-dimensional
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NvmeCommand {
    /// Conventional read of `pages` logical pages starting at `lba`.
    Read {
        /// Starting logical page number.
        lba: u64,
        /// Number of pages.
        pages: u64,
    },
    /// Conventional write of `pages` logical pages starting at `lba`.
    Write {
        /// Starting logical page number.
        lba: u64,
        /// Number of pages.
        pages: u64,
    },
    /// Create a space (or re-dimension an existing one, per the command's
    /// flag in the paper). The device replies with a [`SpaceId`].
    OpenSpace {
        /// Size of each dimension, highest order first.
        dims: Vec<u64>,
        /// Element size in bytes.
        element_size: u32,
    },
    /// Reclaim the dynamic space ID; the data remains.
    CloseSpace {
        /// The space view to close.
        space: SpaceId,
    },
    /// Permanently delete a space: invalidate its building blocks and drop
    /// its translation structures.
    DeleteSpace {
        /// The space to delete.
        space: SpaceId,
    },
    /// Extended multi-dimensional read: fetch the partition of `space` at
    /// `coord` with extent `sub_dims`, assembled in the application's view.
    NdsRead {
        /// Target space.
        space: SpaceId,
        /// Partition origin, in partition-count units per dimension.
        coord: Vec<u64>,
        /// Partition extent per dimension, in elements.
        sub_dims: Vec<u64>,
    },
    /// Extended multi-dimensional write of the partition at `coord`.
    NdsWrite {
        /// Target space.
        space: SpaceId,
        /// Partition origin, in partition-count units per dimension.
        coord: Vec<u64>,
        /// Partition extent per dimension, in elements.
        sub_dims: Vec<u64>,
    },
}

/// Validation failures for commands.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommandError {
    /// More than [`MAX_DIMENSIONS`] dimensions.
    TooManyDimensions(usize),
    /// A dimension exceeds [`MAX_ELEMENTS_PER_DIM`] elements.
    DimensionTooLarge(u64),
    /// A dimension (or page count, or element size) of zero.
    ZeroExtent,
    /// `coord` and `sub_dims` have different lengths.
    MismatchedArity {
        /// Length of the coordinate vector.
        coord: usize,
        /// Length of the sub-dimensionality vector.
        sub_dims: usize,
    },
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::TooManyDimensions(n) => {
                write!(f, "{n} dimensions exceed the limit of {MAX_DIMENSIONS}")
            }
            CommandError::DimensionTooLarge(d) => {
                write!(f, "dimension of {d} elements exceeds 2^24")
            }
            CommandError::ZeroExtent => write!(f, "extents must be non-zero"),
            CommandError::MismatchedArity { coord, sub_dims } => write!(
                f,
                "coordinate has {coord} dimensions but sub-dimensionality has {sub_dims}"
            ),
        }
    }
}

impl std::error::Error for CommandError {}

impl NvmeCommand {
    /// True if this command uses the NDS extension bit (§5.3.1) rather than
    /// the conventional 1-D command format.
    pub fn is_extended(&self) -> bool {
        !matches!(self, NvmeCommand::Read { .. } | NvmeCommand::Write { .. })
    }

    /// Bytes of command metadata crossing the link: 64 B of command words for
    /// every command, plus one 4 KB argument page for extended commands that
    /// carry coordinates or dimension lists.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            NvmeCommand::Read { .. } | NvmeCommand::Write { .. } => 64,
            NvmeCommand::CloseSpace { .. } | NvmeCommand::DeleteSpace { .. } => 64,
            NvmeCommand::OpenSpace { .. }
            | NvmeCommand::NdsRead { .. }
            | NvmeCommand::NdsWrite { .. } => 64 + 4096,
        }
    }

    /// Validates the command against the paper's interface limits.
    ///
    /// # Errors
    ///
    /// Returns the first violated limit (see [`CommandError`]).
    pub fn validate(&self) -> Result<(), CommandError> {
        fn check_dims(dims: &[u64]) -> Result<(), CommandError> {
            if dims.len() > MAX_DIMENSIONS {
                return Err(CommandError::TooManyDimensions(dims.len()));
            }
            for &d in dims {
                if d == 0 {
                    return Err(CommandError::ZeroExtent);
                }
                if d > MAX_ELEMENTS_PER_DIM {
                    return Err(CommandError::DimensionTooLarge(d));
                }
            }
            Ok(())
        }
        match self {
            NvmeCommand::Read { pages, .. } | NvmeCommand::Write { pages, .. } => {
                if *pages == 0 {
                    Err(CommandError::ZeroExtent)
                } else {
                    Ok(())
                }
            }
            NvmeCommand::OpenSpace { dims, element_size } => {
                if *element_size == 0 {
                    return Err(CommandError::ZeroExtent);
                }
                if dims.is_empty() {
                    return Err(CommandError::ZeroExtent);
                }
                check_dims(dims)
            }
            NvmeCommand::CloseSpace { .. } | NvmeCommand::DeleteSpace { .. } => Ok(()),
            NvmeCommand::NdsRead {
                coord, sub_dims, ..
            }
            | NvmeCommand::NdsWrite {
                coord, sub_dims, ..
            } => {
                if coord.len() != sub_dims.len() {
                    return Err(CommandError::MismatchedArity {
                        coord: coord.len(),
                        sub_dims: sub_dims.len(),
                    });
                }
                if coord.len() > MAX_DIMENSIONS {
                    return Err(CommandError::TooManyDimensions(coord.len()));
                }
                check_dims(sub_dims)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_commands_are_not_extended() {
        assert!(!NvmeCommand::Read { lba: 0, pages: 8 }.is_extended());
        assert!(!NvmeCommand::Write { lba: 0, pages: 8 }.is_extended());
        assert!(NvmeCommand::OpenSpace {
            dims: vec![4, 4],
            element_size: 4
        }
        .is_extended());
        assert!(NvmeCommand::NdsRead {
            space: SpaceId(1),
            coord: vec![0, 0],
            sub_dims: vec![4, 4],
        }
        .is_extended());
    }

    #[test]
    fn extended_commands_carry_an_argument_page() {
        let conv = NvmeCommand::Read { lba: 0, pages: 1 };
        let ext = NvmeCommand::NdsRead {
            space: SpaceId(0),
            coord: vec![0],
            sub_dims: vec![1],
        };
        assert_eq!(conv.wire_bytes(), 64);
        assert_eq!(ext.wire_bytes(), 64 + 4096);
    }

    #[test]
    fn validation_accepts_paper_limits() {
        let cmd = NvmeCommand::OpenSpace {
            dims: vec![MAX_ELEMENTS_PER_DIM; MAX_DIMENSIONS],
            element_size: 8,
        };
        assert_eq!(cmd.validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_33_dimensions() {
        let cmd = NvmeCommand::OpenSpace {
            dims: vec![2; MAX_DIMENSIONS + 1],
            element_size: 4,
        };
        assert_eq!(
            cmd.validate(),
            Err(CommandError::TooManyDimensions(MAX_DIMENSIONS + 1))
        );
    }

    #[test]
    fn validation_rejects_oversized_dimension() {
        let cmd = NvmeCommand::OpenSpace {
            dims: vec![MAX_ELEMENTS_PER_DIM + 1],
            element_size: 4,
        };
        assert_eq!(
            cmd.validate(),
            Err(CommandError::DimensionTooLarge(MAX_ELEMENTS_PER_DIM + 1))
        );
    }

    #[test]
    fn validation_rejects_zero_extents() {
        assert_eq!(
            NvmeCommand::Read { lba: 0, pages: 0 }.validate(),
            Err(CommandError::ZeroExtent)
        );
        assert_eq!(
            NvmeCommand::OpenSpace {
                dims: vec![0],
                element_size: 4
            }
            .validate(),
            Err(CommandError::ZeroExtent)
        );
        assert_eq!(
            NvmeCommand::OpenSpace {
                dims: vec![4],
                element_size: 0
            }
            .validate(),
            Err(CommandError::ZeroExtent)
        );
    }

    #[test]
    fn validation_rejects_arity_mismatch() {
        let cmd = NvmeCommand::NdsRead {
            space: SpaceId(0),
            coord: vec![0, 0],
            sub_dims: vec![1],
        };
        assert_eq!(
            cmd.validate(),
            Err(CommandError::MismatchedArity {
                coord: 2,
                sub_dims: 1
            })
        );
    }

    #[test]
    fn error_messages_are_nonempty() {
        let errs: Vec<CommandError> = vec![
            CommandError::TooManyDimensions(40),
            CommandError::DimensionTooLarge(1 << 30),
            CommandError::ZeroExtent,
            CommandError::MismatchedArity {
                coord: 2,
                sub_dims: 3,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
