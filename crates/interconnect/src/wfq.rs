//! Deterministic virtual-time weighted fair queuing (WFQ) in front of the
//! NVMe queue pair.
//!
//! The multi-tenant traffic engine admits work from many tenants but the
//! device executes one command stream; [`WfqScheduler`] decides *whose*
//! command goes next. It implements self-clocked fair queuing (SCFQ): each
//! enqueued request is stamped with a virtual *finish tag*
//! `start + cost / weight`, where `start` is the later of the scheduler's
//! virtual clock and the flow's previous finish tag, and the request with
//! the smallest finish tag is served first. Ties break on the flow id and
//! then on arrival order, so the schedule is a pure function of the
//! enqueue/pop sequence — no wall clock, no hashing, no randomness.
//!
//! All tag arithmetic is integer-only (`u128`, with costs scaled by
//! [`COST_SCALE`] before the weight division) so the schedule is exactly
//! reproducible across platforms.
//!
//! # Example
//!
//! ```
//! use nds_interconnect::WfqScheduler;
//!
//! let mut wfq = WfqScheduler::new();
//! wfq.register(0, 1);
//! wfq.register(1, 3);
//! // Equal-cost requests: the weight-3 flow gets ~3 of every 4 slots.
//! for _ in 0..4 {
//!     wfq.enqueue(0, 4096, ()).unwrap();
//!     wfq.enqueue(1, 4096, ()).unwrap();
//! }
//! let order: Vec<u32> = std::iter::from_fn(|| wfq.pop().map(|(f, _)| f)).collect();
//! assert_eq!(order.iter().filter(|&&f| f == 1).take(3).count(), 3);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Fixed-point scale applied to costs before dividing by the flow weight,
/// so integer finish tags keep 2⁻²⁰ resolution per cost unit.
pub const COST_SCALE: u128 = 1 << 20;

/// Error from [`WfqScheduler::enqueue`]: the finish-tag arithmetic would
/// wrap the u128 virtual clock. With 64-bit costs and the 2²⁰ fixed-point
/// scale this needs ~2⁴⁴ maximal-cost enqueues on one flow, but wrapping
/// silently would reorder every later pop — so the condition is a typed
/// error, not a debug assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WfqError {
    /// `start + cost·COST_SCALE/weight` exceeded `u128::MAX`.
    FinishTagOverflow {
        /// The flow whose enqueue overflowed.
        flow: u32,
        /// The offending request cost.
        cost: u64,
    },
}

impl fmt::Display for WfqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfqError::FinishTagOverflow { flow, cost } => write!(
                f,
                "wfq finish tag overflow: flow {flow} cost {cost} would wrap the virtual clock"
            ),
        }
    }
}

impl std::error::Error for WfqError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FlowState {
    weight: u64,
    last_finish: u128,
    queued: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending<T> {
    flow: u32,
    payload: T,
}

/// A deterministic SCFQ scheduler over `u32` flow ids carrying payloads of
/// type `T` (the traffic engine queues tenant operations).
///
/// Flows are registered with an integer weight (`0` is treated as `1`);
/// unregistered flows are implicitly registered at weight 1 on first
/// enqueue. The scheduler is work-conserving by construction: `pop`
/// returns a request whenever any flow has one queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfqScheduler<T> {
    flows: BTreeMap<u32, FlowState>,
    queue: BTreeMap<(u128, u32, u64), Pending<T>>,
    virtual_now: u128,
    seq: u64,
}

impl<T> Default for WfqScheduler<T> {
    fn default() -> Self {
        WfqScheduler::new()
    }
}

impl<T> WfqScheduler<T> {
    /// An empty scheduler with no flows.
    pub fn new() -> Self {
        WfqScheduler {
            flows: BTreeMap::new(),
            queue: BTreeMap::new(),
            virtual_now: 0,
            seq: 0,
        }
    }

    /// Registers `flow` with `weight` (a weight of 0 is clamped to 1).
    /// Re-registering an existing flow updates its weight for subsequent
    /// enqueues; already-queued requests keep their tags.
    pub fn register(&mut self, flow: u32, weight: u64) {
        let weight = weight.max(1);
        self.flows
            .entry(flow)
            .and_modify(|f| f.weight = weight)
            .or_insert(FlowState {
                weight,
                last_finish: 0,
                queued: 0,
            });
    }

    /// The configured weight of `flow`, if registered.
    pub fn weight(&self, flow: u32) -> Option<u64> {
        self.flows.get(&flow).map(|f| f.weight)
    }

    /// Enqueues a request of `cost` units (bytes, for the traffic engine)
    /// on `flow`, carrying `payload`. A zero cost is treated as 1 so every
    /// request advances the flow's virtual clock.
    ///
    /// The finish tag `start + cost·COST_SCALE/weight` is computed with
    /// checked arithmetic: on u128 overflow the request is rejected with
    /// [`WfqError::FinishTagOverflow`] and the scheduler state is left
    /// exactly as it was (no flow registration, no clock movement).
    pub fn enqueue(&mut self, flow: u32, cost: u64, payload: T) -> Result<(), WfqError> {
        let (weight, last_finish) = self
            .flows
            .get(&flow)
            .map_or((1, 0), |f| (f.weight, f.last_finish));
        let start = last_finish.max(self.virtual_now);
        let overflow = WfqError::FinishTagOverflow { flow, cost };
        let scaled = u128::from(cost.max(1))
            .checked_mul(COST_SCALE)
            .ok_or(overflow)?;
        let finish = start
            .checked_add(scaled / u128::from(weight))
            .ok_or(overflow)?;
        let state = self.flows.entry(flow).or_insert(FlowState {
            weight: 1,
            last_finish: 0,
            queued: 0,
        });
        state.last_finish = finish;
        state.queued += 1;
        let key = (finish, flow, self.seq);
        self.seq += 1;
        self.queue.insert(key, Pending { flow, payload });
        Ok(())
    }

    /// Advances the virtual clock to `to` without serving anything (the
    /// clock never moves backward). This is the checkpoint-restore hook:
    /// a rebuilt scheduler can resume at a saved virtual time, and the
    /// overflow regression tests use it to place the clock near the u128
    /// boundary without ~2⁴⁴ warm-up enqueues.
    pub fn fast_forward(&mut self, to: u128) {
        self.virtual_now = self.virtual_now.max(to);
    }

    /// Dequeues the request with the smallest `(finish tag, flow id,
    /// arrival order)` key and advances the virtual clock to its finish
    /// tag. Returns `None` when no requests are queued.
    pub fn pop(&mut self) -> Option<(u32, T)> {
        let (key, pending) = self.queue.pop_first()?;
        self.virtual_now = self.virtual_now.max(key.0);
        if let Some(state) = self.flows.get_mut(&pending.flow) {
            state.queued = state.queued.saturating_sub(1);
        }
        Some((pending.flow, pending.payload))
    }

    /// Number of requests queued across all flows.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of requests queued on `flow`.
    pub fn queued(&self, flow: u32) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.queued)
    }

    /// The scheduler's current virtual time (monotone across pops).
    pub fn virtual_now(&self) -> u128 {
        self.virtual_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wfq: &mut WfqScheduler<u64>) -> Vec<u32> {
        std::iter::from_fn(|| wfq.pop().map(|(f, _)| f)).collect()
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 1);
        for i in 0..3 {
            wfq.enqueue(0, 100, i).unwrap();
            wfq.enqueue(1, 100, i).unwrap();
        }
        assert_eq!(drain(&mut wfq), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn weights_shape_service_share() {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 3);
        for i in 0..12 {
            wfq.enqueue(0, 4096, i).unwrap();
            wfq.enqueue(1, 4096, i).unwrap();
        }
        // In the first 8 pops, flow 1 (weight 3) should get ~6 slots.
        let order = drain(&mut wfq);
        let head = &order[..8];
        let f1 = head.iter().filter(|&&f| f == 1).count();
        assert!(f1 >= 5, "weight-3 flow got only {f1}/8 early slots");
        // Everything completes (no starvation at the scheduler level).
        assert_eq!(order.len(), 24);
        assert_eq!(order.iter().filter(|&&f| f == 0).count(), 12);
    }

    #[test]
    fn ties_break_on_flow_id_then_seq() {
        let mut wfq = WfqScheduler::new();
        wfq.register(2, 1);
        wfq.register(1, 1);
        wfq.enqueue(2, 64, 0u64).unwrap();
        wfq.enqueue(1, 64, 1u64).unwrap();
        // Same cost, same weight, same start → same finish tag; the lower
        // flow id wins.
        assert_eq!(wfq.pop(), Some((1, 1)));
        assert_eq!(wfq.pop(), Some((2, 0)));
    }

    #[test]
    fn idle_flow_resyncs_to_virtual_now() {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 1);
        for i in 0..8 {
            wfq.enqueue(0, 1 << 16, i).unwrap();
        }
        for _ in 0..8 {
            wfq.pop();
        }
        // Flow 1 was idle throughout; SCFQ starts it at the current virtual
        // time, so it owes no debt for service it never requested — its
        // finish tag ties flow 0's and the pair alternates from here.
        wfq.enqueue(1, 1 << 16, 100).unwrap();
        wfq.enqueue(0, 1 << 16, 101).unwrap();
        wfq.enqueue(1, 1 << 16, 102).unwrap();
        wfq.enqueue(0, 1 << 16, 103).unwrap();
        assert_eq!(drain(&mut wfq), vec![0, 1, 0, 1]);
    }

    #[test]
    fn zero_cost_and_unregistered_flow_are_safe() {
        let mut wfq: WfqScheduler<()> = WfqScheduler::new();
        wfq.enqueue(7, 0, ()).unwrap();
        assert_eq!(wfq.queued(7), 1);
        assert_eq!(wfq.weight(7), Some(1));
        assert_eq!(wfq.pop(), Some((7, ())));
        assert!(wfq.is_empty());
        assert!(wfq.virtual_now() > 0, "zero cost still advances the clock");
    }

    #[test]
    fn finish_tag_overflow_is_a_typed_error() {
        let mut wfq: WfqScheduler<()> = WfqScheduler::new();
        wfq.register(9, 1);
        // Park the virtual clock one COST_SCALE below the boundary: a
        // minimal request still fits exactly, a maximal one cannot.
        wfq.fast_forward(u128::MAX - COST_SCALE);
        let err = wfq.enqueue(9, u64::MAX, ()).unwrap_err();
        assert_eq!(
            err,
            WfqError::FinishTagOverflow {
                flow: 9,
                cost: u64::MAX
            }
        );
        assert!(!err.to_string().is_empty());
        // The failed enqueue left no residue: nothing queued, the flow's
        // tag untouched, and a small request still succeeds afterwards.
        assert!(wfq.is_empty());
        assert_eq!(wfq.queued(9), 0);
        wfq.enqueue(9, 1, ()).unwrap();
        assert_eq!(wfq.pop(), Some((9, ())));
        assert_eq!(wfq.virtual_now(), u128::MAX);
        // At the ceiling, even a minimal request overflows.
        assert!(wfq.enqueue(9, 1, ()).is_err());
    }

    #[test]
    fn extreme_weight_and_cost_stay_exact() {
        // weight u64::MAX with maximal cost: scaled fits u128 (2⁶⁴·2²⁰)
        // and the division keeps the tag small — no precision cliff.
        let mut wfq: WfqScheduler<u8> = WfqScheduler::new();
        wfq.register(0, u64::MAX);
        wfq.register(1, 1);
        wfq.enqueue(0, u64::MAX, 0).unwrap();
        wfq.enqueue(1, u64::MAX, 1).unwrap();
        // The max-weight flow's finish tag is ~2²⁰, the weight-1 flow's is
        // ~2⁸⁴: the heavy flow pops first.
        assert_eq!(wfq.pop(), Some((0, 0)));
        assert_eq!(wfq.pop(), Some((1, 1)));
    }

    #[test]
    fn failed_enqueue_does_not_register_the_flow() {
        let mut wfq: WfqScheduler<()> = WfqScheduler::new();
        wfq.fast_forward(u128::MAX);
        assert!(wfq.enqueue(3, 1, ()).is_err());
        assert_eq!(wfq.weight(3), None);
    }

    #[test]
    fn same_sequence_same_schedule() {
        let build = || {
            let mut wfq = WfqScheduler::new();
            wfq.register(0, 2);
            wfq.register(1, 5);
            wfq.register(2, 1);
            for i in 0..30u64 {
                wfq.enqueue((i % 3) as u32, 1000 + i * 37, i).unwrap();
            }
            let mut order = Vec::new();
            while let Some(item) = wfq.pop() {
                order.push(item);
            }
            order
        };
        assert_eq!(build(), build());
    }
}
