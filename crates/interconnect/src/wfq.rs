//! Deterministic virtual-time weighted fair queuing (WFQ) in front of the
//! NVMe queue pair.
//!
//! The multi-tenant traffic engine admits work from many tenants but the
//! device executes one command stream; [`WfqScheduler`] decides *whose*
//! command goes next. It implements self-clocked fair queuing (SCFQ): each
//! enqueued request is stamped with a virtual *finish tag*
//! `start + cost / weight`, where `start` is the later of the scheduler's
//! virtual clock and the flow's previous finish tag, and the request with
//! the smallest finish tag is served first. Ties break on the flow id and
//! then on arrival order, so the schedule is a pure function of the
//! enqueue/pop sequence — no wall clock, no hashing, no randomness.
//!
//! All tag arithmetic is integer-only (`u128`, with costs scaled by
//! [`COST_SCALE`] before the weight division) so the schedule is exactly
//! reproducible across platforms.
//!
//! # Example
//!
//! ```
//! use nds_interconnect::WfqScheduler;
//!
//! let mut wfq = WfqScheduler::new();
//! wfq.register(0, 1);
//! wfq.register(1, 3);
//! // Equal-cost requests: the weight-3 flow gets ~3 of every 4 slots.
//! for _ in 0..4 {
//!     wfq.enqueue(0, 4096, ());
//!     wfq.enqueue(1, 4096, ());
//! }
//! let order: Vec<u32> = std::iter::from_fn(|| wfq.pop().map(|(f, _)| f)).collect();
//! assert_eq!(order.iter().filter(|&&f| f == 1).take(3).count(), 3);
//! ```

use std::collections::BTreeMap;

/// Fixed-point scale applied to costs before dividing by the flow weight,
/// so integer finish tags keep 2⁻²⁰ resolution per cost unit.
pub const COST_SCALE: u128 = 1 << 20;

#[derive(Debug, Clone, PartialEq, Eq)]
struct FlowState {
    weight: u64,
    last_finish: u128,
    queued: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending<T> {
    flow: u32,
    payload: T,
}

/// A deterministic SCFQ scheduler over `u32` flow ids carrying payloads of
/// type `T` (the traffic engine queues tenant operations).
///
/// Flows are registered with an integer weight (`0` is treated as `1`);
/// unregistered flows are implicitly registered at weight 1 on first
/// enqueue. The scheduler is work-conserving by construction: `pop`
/// returns a request whenever any flow has one queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfqScheduler<T> {
    flows: BTreeMap<u32, FlowState>,
    queue: BTreeMap<(u128, u32, u64), Pending<T>>,
    virtual_now: u128,
    seq: u64,
}

impl<T> Default for WfqScheduler<T> {
    fn default() -> Self {
        WfqScheduler::new()
    }
}

impl<T> WfqScheduler<T> {
    /// An empty scheduler with no flows.
    pub fn new() -> Self {
        WfqScheduler {
            flows: BTreeMap::new(),
            queue: BTreeMap::new(),
            virtual_now: 0,
            seq: 0,
        }
    }

    /// Registers `flow` with `weight` (a weight of 0 is clamped to 1).
    /// Re-registering an existing flow updates its weight for subsequent
    /// enqueues; already-queued requests keep their tags.
    pub fn register(&mut self, flow: u32, weight: u64) {
        let weight = weight.max(1);
        self.flows
            .entry(flow)
            .and_modify(|f| f.weight = weight)
            .or_insert(FlowState {
                weight,
                last_finish: 0,
                queued: 0,
            });
    }

    /// The configured weight of `flow`, if registered.
    pub fn weight(&self, flow: u32) -> Option<u64> {
        self.flows.get(&flow).map(|f| f.weight)
    }

    /// Enqueues a request of `cost` units (bytes, for the traffic engine)
    /// on `flow`, carrying `payload`. A zero cost is treated as 1 so every
    /// request advances the flow's virtual clock.
    pub fn enqueue(&mut self, flow: u32, cost: u64, payload: T) {
        let virtual_now = self.virtual_now;
        let state = self.flows.entry(flow).or_insert(FlowState {
            weight: 1,
            last_finish: 0,
            queued: 0,
        });
        let start = state.last_finish.max(virtual_now);
        let scaled = u128::from(cost.max(1)) * COST_SCALE;
        let finish = start + scaled / u128::from(state.weight);
        state.last_finish = finish;
        state.queued += 1;
        let key = (finish, flow, self.seq);
        self.seq += 1;
        self.queue.insert(key, Pending { flow, payload });
    }

    /// Dequeues the request with the smallest `(finish tag, flow id,
    /// arrival order)` key and advances the virtual clock to its finish
    /// tag. Returns `None` when no requests are queued.
    pub fn pop(&mut self) -> Option<(u32, T)> {
        let (key, pending) = self.queue.pop_first()?;
        self.virtual_now = self.virtual_now.max(key.0);
        if let Some(state) = self.flows.get_mut(&pending.flow) {
            state.queued = state.queued.saturating_sub(1);
        }
        Some((pending.flow, pending.payload))
    }

    /// Number of requests queued across all flows.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of requests queued on `flow`.
    pub fn queued(&self, flow: u32) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.queued)
    }

    /// The scheduler's current virtual time (monotone across pops).
    pub fn virtual_now(&self) -> u128 {
        self.virtual_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wfq: &mut WfqScheduler<u64>) -> Vec<u32> {
        std::iter::from_fn(|| wfq.pop().map(|(f, _)| f)).collect()
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 1);
        for i in 0..3 {
            wfq.enqueue(0, 100, i);
            wfq.enqueue(1, 100, i);
        }
        assert_eq!(drain(&mut wfq), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn weights_shape_service_share() {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 3);
        for i in 0..12 {
            wfq.enqueue(0, 4096, i);
            wfq.enqueue(1, 4096, i);
        }
        // In the first 8 pops, flow 1 (weight 3) should get ~6 slots.
        let order = drain(&mut wfq);
        let head = &order[..8];
        let f1 = head.iter().filter(|&&f| f == 1).count();
        assert!(f1 >= 5, "weight-3 flow got only {f1}/8 early slots");
        // Everything completes (no starvation at the scheduler level).
        assert_eq!(order.len(), 24);
        assert_eq!(order.iter().filter(|&&f| f == 0).count(), 12);
    }

    #[test]
    fn ties_break_on_flow_id_then_seq() {
        let mut wfq = WfqScheduler::new();
        wfq.register(2, 1);
        wfq.register(1, 1);
        wfq.enqueue(2, 64, 0u64);
        wfq.enqueue(1, 64, 1u64);
        // Same cost, same weight, same start → same finish tag; the lower
        // flow id wins.
        assert_eq!(wfq.pop(), Some((1, 1)));
        assert_eq!(wfq.pop(), Some((2, 0)));
    }

    #[test]
    fn idle_flow_resyncs_to_virtual_now() {
        let mut wfq = WfqScheduler::new();
        wfq.register(0, 1);
        wfq.register(1, 1);
        for i in 0..8 {
            wfq.enqueue(0, 1 << 16, i);
        }
        for _ in 0..8 {
            wfq.pop();
        }
        // Flow 1 was idle throughout; SCFQ starts it at the current virtual
        // time, so it owes no debt for service it never requested — its
        // finish tag ties flow 0's and the pair alternates from here.
        wfq.enqueue(1, 1 << 16, 100);
        wfq.enqueue(0, 1 << 16, 101);
        wfq.enqueue(1, 1 << 16, 102);
        wfq.enqueue(0, 1 << 16, 103);
        assert_eq!(drain(&mut wfq), vec![0, 1, 0, 1]);
    }

    #[test]
    fn zero_cost_and_unregistered_flow_are_safe() {
        let mut wfq: WfqScheduler<()> = WfqScheduler::new();
        wfq.enqueue(7, 0, ());
        assert_eq!(wfq.queued(7), 1);
        assert_eq!(wfq.weight(7), Some(1));
        assert_eq!(wfq.pop(), Some((7, ())));
        assert!(wfq.is_empty());
        assert!(wfq.virtual_now() > 0, "zero cost still advances the clock");
    }

    #[test]
    fn same_sequence_same_schedule() {
        let build = || {
            let mut wfq = WfqScheduler::new();
            wfq.register(0, 2);
            wfq.register(1, 5);
            wfq.register(2, 1);
            for i in 0..30u64 {
                wfq.enqueue((i % 3) as u32, 1000 + i * 37, i);
            }
            let mut order = Vec::new();
            while let Some(item) = wfq.pop() {
                order.push(item);
            }
            order
        };
        assert_eq!(build(), build());
    }
}
