//! Submission/completion queue pairs.
//!
//! NVMe hosts talk to devices through paired submission (SQ) and completion
//! (CQ) ring buffers (Fig. 8 shows the NDS controller's SAQ/STQ/CMDQ and the
//! four completion queues). The model here captures what matters to the
//! reproduction: a queue pair has finite depth, commands enter in order, and
//! the device retires them in order — so a flood of small commands can stall
//! the host when the ring fills, another face of \[P2\].

use std::collections::VecDeque;

use crate::command::NvmeCommand;

/// A bounded submission/completion queue pair.
///
/// # Example
///
/// ```
/// use nds_interconnect::{NvmeCommand, QueuePair};
///
/// let mut q = QueuePair::new(4);
/// q.submit(NvmeCommand::Read { lba: 0, pages: 1 }).unwrap();
/// let cmd = q.device_pop().expect("one command pending");
/// q.complete(cmd.clone());
/// assert_eq!(q.reap(), Some(cmd));
/// ```
#[derive(Debug, Clone)]
pub struct QueuePair {
    depth: usize,
    submission: VecDeque<NvmeCommand>,
    completion: VecDeque<NvmeCommand>,
    submitted_total: u64,
    completed_total: u64,
    reaped_total: u64,
}

/// NVMe's customary default I/O queue depth, used by [`QueuePair::default`].
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

impl Default for QueuePair {
    /// A usable pair at [`DEFAULT_QUEUE_DEPTH`]. (A derived `Default` once
    /// produced a depth-0 pair that bypassed the `new()` assertion and
    /// rejected every submit with `QueueFull`.)
    fn default() -> Self {
        QueuePair::new(DEFAULT_QUEUE_DEPTH)
    }
}

/// Errors from queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueueError {
    /// The submission ring is full; the host must wait for completions.
    QueueFull,
}

impl core::fmt::Display for QueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueueError::QueueFull => write!(f, "submission queue is full"),
        }
    }
}

impl std::error::Error for QueueError {}

impl QueuePair {
    /// Creates a queue pair with `depth` submission slots.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be non-zero");
        QueuePair {
            depth,
            submission: VecDeque::new(),
            completion: VecDeque::new(),
            submitted_total: 0,
            completed_total: 0,
            reaped_total: 0,
        }
    }

    /// Host side: submits a command.
    ///
    /// # Errors
    ///
    /// [`QueueError::QueueFull`] if the ring has no free slot.
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<(), QueueError> {
        if self.submission.len() >= self.depth {
            return Err(QueueError::QueueFull);
        }
        self.submission.push_back(cmd);
        self.submitted_total += 1;
        Ok(())
    }

    /// Device side: takes the oldest submitted command, if any.
    pub fn device_pop(&mut self) -> Option<NvmeCommand> {
        self.submission.pop_front()
    }

    /// Device side: posts a completion for a finished command.
    pub fn complete(&mut self, cmd: NvmeCommand) {
        self.completion.push_back(cmd);
        self.completed_total += 1;
    }

    /// Host side: reaps the oldest completion, if any.
    pub fn reap(&mut self) -> Option<NvmeCommand> {
        let cmd = self.completion.pop_front();
        if cmd.is_some() {
            self.reaped_total += 1;
        }
        cmd
    }

    /// Commands currently in flight (submitted, not yet completed and
    /// reaped): `submitted_total − reaped_total`. This counts commands in
    /// every lifecycle stage — waiting in the submission ring, popped by the
    /// device but not completed, and completed but not yet reaped. (It
    /// previously returned only `submission.len()`, silently dropping the
    /// latter two stages.)
    pub fn in_flight(&self) -> usize {
        (self.submitted_total - self.reaped_total) as usize
    }

    /// Total commands ever submitted.
    pub fn submitted_total(&self) -> u64 {
        self.submitted_total
    }

    /// Total commands ever completed.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Total completions the host has reaped.
    pub fn reaped_total(&self) -> u64 {
        self.reaped_total
    }

    /// The configured ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(lba: u64) -> NvmeCommand {
        NvmeCommand::Read { lba, pages: 1 }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = QueuePair::new(8);
        for lba in 0..5 {
            q.submit(read(lba)).unwrap();
        }
        for lba in 0..5 {
            assert_eq!(q.device_pop(), Some(read(lba)));
        }
        assert_eq!(q.device_pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let mut q = QueuePair::new(2);
        q.submit(read(0)).unwrap();
        q.submit(read(1)).unwrap();
        assert_eq!(q.submit(read(2)), Err(QueueError::QueueFull));
        // Draining one slot unblocks submission.
        q.device_pop();
        assert!(q.submit(read(2)).is_ok());
    }

    #[test]
    fn completions_flow_back() {
        let mut q = QueuePair::new(4);
        q.submit(read(7)).unwrap();
        let cmd = q.device_pop().unwrap();
        q.complete(cmd.clone());
        assert_eq!(q.reap(), Some(cmd));
        assert_eq!(q.reap(), None);
        assert_eq!(q.submitted_total(), 1);
        assert_eq!(q.completed_total(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_rejected() {
        let _ = QueuePair::new(0);
    }

    #[test]
    fn in_flight_spans_the_whole_lifecycle() {
        // Regression (ISSUE 4): in_flight() used to return submission.len(),
        // so commands the device had popped but not completed — and
        // completions not yet reaped — vanished from the count.
        let mut q = QueuePair::new(8);
        q.submit(read(0)).unwrap();
        q.submit(read(1)).unwrap();
        assert_eq!(q.in_flight(), 2, "both waiting in the submission ring");
        let cmd = q.device_pop().unwrap();
        assert_eq!(q.in_flight(), 2, "popped-but-not-completed still in flight");
        q.complete(cmd);
        assert_eq!(q.in_flight(), 2, "completed-but-not-reaped still in flight");
        assert_eq!(q.reap().as_ref(), Some(&read(0)));
        assert_eq!(q.in_flight(), 1, "reaping retires the command");
        let cmd = q.device_pop().unwrap();
        q.complete(cmd);
        q.reap().unwrap();
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.reaped_total(), 2);
    }

    #[test]
    fn reap_on_empty_queue_counts_nothing() {
        let mut q = QueuePair::new(2);
        assert_eq!(q.reap(), None);
        assert_eq!(q.reaped_total(), 0);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn default_queue_pair_is_usable() {
        // Regression (ISSUE 4): the derived Default built a depth-0 pair
        // that bypassed new()'s assertion, so every submit returned
        // QueueFull. Default now delegates to a sane NVMe depth.
        let mut q = QueuePair::default();
        assert_eq!(q.depth(), DEFAULT_QUEUE_DEPTH);
        for lba in 0..DEFAULT_QUEUE_DEPTH as u64 {
            q.submit(read(lba))
                .expect("default pair accepts submissions");
        }
        assert_eq!(q.submit(read(99)), Err(QueueError::QueueFull));
    }
}
