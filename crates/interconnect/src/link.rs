//! The interconnect bandwidth model.

use core::fmt;

use nds_faults::{FaultConfig, FaultPlan, LinkFault};
use nds_sim::{
    ComponentId, EventKind, ObsConfig, Observability, Resource, SimDuration, SimTime, Stats,
    Throughput, TimelineSnapshot, TraceContext,
};
use serde::{Deserialize, Serialize};

/// Journal identity of the link singleton.
const LINK_COMPONENT: ComponentId = ComponentId::singleton("link");

/// Errors raised by the fault-aware link path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkError {
    /// A command kept timing out (or losing its completion) after the host
    /// queue spent its whole retransmission budget.
    RetriesExhausted {
        /// Payload size of the abandoned command.
        bytes: u64,
        /// Transmission attempts made (original + retries).
        attempts: u32,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::RetriesExhausted { bytes, attempts } => write!(
                f,
                "link command of {bytes} bytes abandoned after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// Parameters of a host↔device link.
///
/// The model charges every transfer a fixed `per_command` overhead (command
/// submission, doorbell, DMA setup, completion) plus `bytes / peak` of wire
/// time. Effective bandwidth is therefore
/// `peak × bytes / (bytes + peak × per_command)` — the classic
/// request-size-amortization curve behind the paper's \[P2\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Peak wire bandwidth.
    pub peak: Throughput,
    /// Fixed per-command/transaction overhead.
    pub per_command: SimDuration,
}

impl LinkConfig {
    /// The paper's NVMe-over-Fabrics path: a Mellanox 40 Gbps NIC over
    /// PCIe 3.0 ×8 (§6.1). Peak ≈ 4.7 GiB/s; the 3.4 µs per-command overhead
    /// is fitted so a 32 KB request achieves ≈66% of peak and a 2 MB request
    /// ≈99% — the two points §2.1 \[P2\] reports.
    pub fn nvmeof_40g() -> Self {
        LinkConfig {
            peak: Throughput::mib_per_sec(4800.0),
            per_command: SimDuration::from_nanos(3_400),
        }
    }

    /// A PCIe 3.0 ×16 host↔GPU path (H2D copies), ≈12 GiB/s with a smaller
    /// per-transfer cost.
    pub fn pcie3_x16() -> Self {
        LinkConfig {
            peak: Throughput::mib_per_sec(12_000.0),
            per_command: SimDuration::from_nanos(1_500),
        }
    }

    /// The equivalent "overhead bytes" of the per-command cost: the transfer
    /// size at which half of peak bandwidth is achieved.
    pub fn overhead_bytes(&self) -> f64 {
        self.peak.bytes_per_sec_f64() * self.per_command.as_secs_f64()
    }
}

/// A serially-occupied host↔device link with per-command overhead.
///
/// # Example
///
/// ```
/// use nds_interconnect::{Link, LinkConfig};
/// use nds_sim::SimTime;
///
/// let mut link = Link::new(LinkConfig::nvmeof_40g());
/// let t1 = link.transfer(2 * 1024 * 1024, SimTime::ZERO);
/// let t2 = link.transfer(2 * 1024 * 1024, SimTime::ZERO); // queues behind t1
/// assert!(t2 > t1);
/// assert_eq!(link.stats().get("link.commands"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    wire: Resource,
    stats: Stats,
    faults: Option<FaultPlan>,
    obs: Observability,
}

impl Link {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            wire: Resource::new("link"),
            stats: Stats::new(),
            faults: None,
            obs: Observability::disabled(),
        }
    }

    /// Applies an observability configuration: journal + histograms on the
    /// link, and (when `timelines` is set) busy-time sampling on the wire.
    /// Hooks stay one-branch no-ops while everything is disabled.
    pub fn configure_observability(&mut self, config: &ObsConfig) {
        self.obs.configure(config);
        if config.timelines {
            self.wire
                .enable_timeline(config.timeline_window, config.timeline_buckets);
        }
    }

    /// The link's journal and histograms.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Mutable access to the link's journal and histograms.
    pub fn observability_mut(&mut self) -> &mut Observability {
        &mut self.obs
    }

    /// Tags subsequent journal events (command lifecycle, fault/retry)
    /// with a front-end command's trace context; paired with
    /// [`end_trace`](Self::end_trace) around each traced command.
    pub fn begin_trace(&mut self, ctx: TraceContext) {
        self.obs.set_trace(ctx);
    }

    /// Stops trace tagging on the link journal.
    pub fn end_trace(&mut self) {
        self.obs.clear_trace();
    }

    /// Snapshot of the wire's busy-time timeline, if sampling was enabled.
    pub fn wire_timeline(&self) -> Option<TimelineSnapshot> {
        self.wire.timeline_snapshot()
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Counters: `link.commands`, `link.bytes`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Time one transfer of `bytes` occupies the link (overhead + wire time).
    pub fn occupancy(&self, bytes: u64) -> SimDuration {
        self.config.per_command + self.config.peak.time_for_bytes(bytes)
    }

    /// The effective bandwidth a single command of `bytes` achieves.
    pub fn effective_bandwidth(&self, bytes: u64) -> Throughput {
        Throughput::from_bytes_over(bytes, self.occupancy(bytes))
    }

    /// Installs a deterministic link-fault plan: subsequent
    /// [`try_transfer`](Self::try_transfer) calls draw one decision per
    /// command. The plain [`transfer`](Self::transfer) path stays fault-free
    /// for golden runs.
    pub fn install_faults(&mut self, config: FaultConfig) {
        self.faults = Some(FaultPlan::new(config));
    }

    /// True if a fault plan has been installed.
    pub fn faults_installed(&self) -> bool {
        self.faults.is_some()
    }

    /// Schedules one command moving `bytes`, ready at `ready`; returns the
    /// completion instant. Commands serialize FIFO on the wire. This path
    /// never consults the fault plan — use
    /// [`try_transfer`](Self::try_transfer) on operational paths.
    pub fn transfer(&mut self, bytes: u64, ready: SimTime) -> SimTime {
        self.stats.add("link.commands", 1);
        self.stats.add("link.bytes", bytes);
        let done = self.wire.acquire(ready, self.occupancy(bytes));
        self.obs
            .event(ready, LINK_COMPONENT, || EventKind::CommandIssued { bytes });
        self.obs
            .event(done, LINK_COMPONENT, || EventKind::CommandCompleted {
                bytes,
            });
        self.obs
            .latency("link.command", done.saturating_since(ready));
        done
    }

    /// Schedules one command under the installed fault plan.
    ///
    /// A clean command behaves exactly like [`transfer`](Self::transfer). A
    /// faulted command (timeout or dropped completion — the host queue
    /// cannot tell them apart) burns full wire occupancy per failed attempt,
    /// then waits an exponentially doubling backoff before retransmitting;
    /// each retransmission counts in `retries.link`. Retries never draw new
    /// plan decisions, so fault sequences stay aligned across fault rates.
    ///
    /// # Errors
    ///
    /// [`LinkError::RetriesExhausted`] when the command still fails after
    /// the configured retry budget (the spent attempts stay on the wire's
    /// timeline).
    pub fn try_transfer(&mut self, bytes: u64, ready: SimTime) -> Result<SimTime, LinkError> {
        self.stats.add("link.commands", 1);
        self.stats.add("link.bytes", bytes);
        self.obs
            .event(ready, LINK_COMPONENT, || EventKind::CommandIssued { bytes });
        let occupancy = self.occupancy(bytes);
        // Capture the retry parameters while the plan is borrowed: the
        // fault arms below then need no second (fallible) plan lookup.
        let (decision, budget, initial_backoff) = match self.faults.as_mut() {
            Some(plan) => {
                let cfg = plan.config();
                let (budget, backoff) = (cfg.link_retry_budget, cfg.link_backoff);
                (plan.next_link_fault(), budget, backoff)
            }
            None => (LinkFault::None, 0, nds_sim::SimDuration::from_nanos(0)),
        };
        let (failures, mode, fault_kind) = match decision {
            LinkFault::None => {
                let done = self.wire.acquire(ready, occupancy);
                self.obs
                    .event(done, LINK_COMPONENT, || EventKind::CommandCompleted {
                        bytes,
                    });
                self.obs
                    .latency("link.command", done.saturating_since(ready));
                return Ok(done);
            }
            LinkFault::Timeout { failures } => (failures, "faults.link_timeouts", "link.timeout"),
            LinkFault::DroppedCompletion { failures } => {
                (failures, "faults.link_drops", "link.drop")
            }
        };
        self.stats.add("faults.injected", 1);
        self.stats.add(mode, 1);
        self.obs
            .event(ready, LINK_COMPONENT, || EventKind::FaultInjected {
                kind: fault_kind,
            });
        let mut backoff = initial_backoff;
        let mut at = ready;
        for attempt in 0..failures.min(budget) {
            // The failed attempt holds the wire for its full occupancy —
            // the host only learns of the loss by timing out.
            let failed_at = self.wire.acquire(at, occupancy);
            self.stats.add("retries.link", 1);
            at = failed_at + backoff;
            backoff = backoff * 2;
            self.obs
                .event(at, LINK_COMPONENT, || EventKind::RetryScheduled {
                    attempt: attempt + 1,
                });
        }
        if failures > budget {
            return Err(LinkError::RetriesExhausted {
                bytes,
                attempts: budget + 1,
            });
        }
        self.stats.add("faults.recovered", 1);
        let done = self.wire.acquire(at, occupancy);
        self.obs
            .event(done, LINK_COMPONENT, || EventKind::CommandCompleted {
                bytes,
            });
        self.obs
            .latency("link.command", done.saturating_since(ready));
        Ok(done)
    }

    /// Schedules a zero-payload command (e.g. `open_space`), charging only
    /// the per-command overhead.
    pub fn control_command(&mut self, ready: SimTime) -> SimTime {
        self.stats.add("link.commands", 1);
        let done = self.wire.acquire(ready, self.config.per_command);
        self.obs
            .event(ready, LINK_COMPONENT, || EventKind::CommandIssued {
                bytes: 0,
            });
        self.obs
            .event(done, LINK_COMPONENT, || EventKind::CommandCompleted {
                bytes: 0,
            });
        self.obs
            .latency("link.command", done.saturating_since(ready));
        done
    }

    /// The instant the wire drains all committed transfers.
    pub fn drained_at(&self) -> SimTime {
        self.wire.next_free()
    }

    /// Total wire occupancy accumulated since the last timing reset — the
    /// throughput cost of the scheduled transfers.
    pub fn busy_time(&self) -> SimDuration {
        self.wire.busy_time()
    }

    /// Resets occupancy to idle at t = 0, keeping counters.
    pub fn reset_timing(&mut self) {
        self.wire.reset();
    }

    /// Ends the current per-operation timing epoch after `span` of modeled
    /// time: the wire timeline advances by the operation's end-to-end span
    /// (not just the wire's own drain), keeping it aligned with the
    /// run-long trace clock. Front-ends call this at operation end; see
    /// [`Resource::fold_epoch`](nds_sim::Resource::fold_epoch).
    pub fn fold_timing_epoch(&mut self, span: SimDuration) {
        self.wire.fold_epoch(span);
        self.obs.fold_metrics_epoch(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_p2_curve_points() {
        let link = Link::new(LinkConfig::nvmeof_40g());
        let peak = link.config().peak.bytes_per_sec_f64();
        let at_32k = link.effective_bandwidth(32 * 1024).bytes_per_sec_f64() / peak;
        let at_2m = link
            .effective_bandwidth(2 * 1024 * 1024)
            .bytes_per_sec_f64()
            / peak;
        assert!(
            (at_32k - 0.66).abs() < 0.04,
            "32 KB should reach ~66% of peak, got {:.0}%",
            at_32k * 100.0
        );
        assert!(
            at_2m > 0.98,
            "2 MB should saturate, got {:.0}%",
            at_2m * 100.0
        );
    }

    #[test]
    fn effective_bandwidth_is_monotonic_in_size() {
        let link = Link::new(LinkConfig::nvmeof_40g());
        let mut last = 0.0;
        for shift in 9..24 {
            let bw = link.effective_bandwidth(1 << shift).bytes_per_sec_f64();
            assert!(bw > last);
            last = bw;
        }
    }

    #[test]
    fn many_small_commands_cost_more_than_one_large() {
        let mut a = Link::new(LinkConfig::nvmeof_40g());
        let mut b = Link::new(LinkConfig::nvmeof_40g());
        let total: u64 = 8 * 1024 * 1024;
        let small = total / 256;
        let mut t_many = SimTime::ZERO;
        for _ in 0..256 {
            t_many = a.transfer(small, t_many);
        }
        let t_one = b.transfer(total, SimTime::ZERO);
        assert!(t_many > t_one);
        assert_eq!(a.stats().get("link.bytes"), b.stats().get("link.bytes"));
        assert_eq!(a.stats().get("link.commands"), 256);
    }

    #[test]
    fn transfers_serialize_fifo() {
        let mut link = Link::new(LinkConfig::pcie3_x16());
        let t1 = link.transfer(1 << 20, SimTime::ZERO);
        let t2 = link.transfer(1 << 20, SimTime::ZERO);
        assert_eq!(t2 - t1, t1 - SimTime::ZERO);
    }

    #[test]
    fn control_commands_charge_overhead_only() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        let t = link.control_command(SimTime::ZERO);
        assert_eq!(t, SimTime::ZERO + link.config().per_command);
    }

    #[test]
    fn overhead_bytes_is_half_peak_point() {
        let cfg = LinkConfig::nvmeof_40g();
        let link = Link::new(cfg);
        let half_point = cfg.overhead_bytes() as u64;
        let eff = link.effective_bandwidth(half_point).bytes_per_sec_f64();
        assert!((eff / cfg.peak.bytes_per_sec_f64() - 0.5).abs() < 0.01);
    }

    #[test]
    fn reset_timing_keeps_counters() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        link.transfer(4096, SimTime::ZERO);
        link.reset_timing();
        assert_eq!(link.drained_at(), SimTime::ZERO);
        assert_eq!(link.stats().get("link.commands"), 1);
    }

    #[test]
    fn try_transfer_without_plan_matches_transfer() {
        let mut plain = Link::new(LinkConfig::nvmeof_40g());
        let mut faulty = Link::new(LinkConfig::nvmeof_40g());
        for i in 1..32u64 {
            let a = plain.transfer(i * 1024, SimTime::ZERO);
            let b = faulty.try_transfer(i * 1024, SimTime::ZERO).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn zero_rate_plan_is_schedule_identical() {
        let mut plain = Link::new(LinkConfig::nvmeof_40g());
        let mut faulty = Link::new(LinkConfig::nvmeof_40g());
        faulty.install_faults(FaultConfig::with_rate(3, 0.0));
        for i in 1..32u64 {
            let a = plain.transfer(i * 1024, SimTime::ZERO);
            let b = faulty.try_transfer(i * 1024, SimTime::ZERO).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn injected_faults_add_time_and_always_recover_within_budget() {
        let mut plain = Link::new(LinkConfig::nvmeof_40g());
        let mut faulty = Link::new(LinkConfig::nvmeof_40g());
        faulty.install_faults(FaultConfig {
            seed: 7,
            link_fault_rate: 1.0,
            ..FaultConfig::disabled()
        });
        for _ in 0..64 {
            let clean = plain.transfer(8192, SimTime::ZERO);
            let recovered = faulty.try_transfer(8192, SimTime::ZERO).unwrap();
            assert!(recovered > clean, "a faulted command must cost extra time");
        }
        let s = faulty.stats();
        assert_eq!(s.get("faults.injected"), 64);
        assert_eq!(s.get("faults.recovered"), 64);
        assert!(s.get("retries.link") >= 64);
        assert_eq!(
            s.get("faults.link_timeouts") + s.get("faults.link_drops"),
            64
        );
    }

    #[test]
    fn exhausted_budget_is_a_typed_error() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        link.install_faults(FaultConfig {
            seed: 7,
            link_fault_rate: 1.0,
            link_retry_budget: 0,
            ..FaultConfig::disabled()
        });
        let err = link.try_transfer(4096, SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            LinkError::RetriesExhausted {
                bytes: 4096,
                attempts: 1
            }
        ));
        assert!(!err.to_string().is_empty());
        assert_eq!(link.stats().get("faults.recovered"), 0);
    }

    #[test]
    fn observability_hooks_are_schedule_neutral() {
        let cfg = FaultConfig {
            seed: 7,
            link_fault_rate: 0.5,
            ..FaultConfig::disabled()
        };
        let mut plain = Link::new(LinkConfig::nvmeof_40g());
        plain.install_faults(cfg);
        let mut observed = Link::new(LinkConfig::nvmeof_40g());
        observed.install_faults(cfg);
        observed.configure_observability(&nds_sim::ObsConfig::full());
        for i in 1..64u64 {
            let a = plain.try_transfer(i * 512, SimTime::ZERO);
            let b = observed.try_transfer(i * 512, SimTime::ZERO);
            assert_eq!(a, b, "enabling observability must not move the schedule");
        }
        assert_eq!(plain.stats(), observed.stats());
        assert_eq!(plain.drained_at(), observed.drained_at());
    }

    #[test]
    fn journal_and_histogram_capture_the_command_lifecycle() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        link.configure_observability(&nds_sim::ObsConfig::full());
        let done = link.transfer(32 * 1024, SimTime::ZERO);
        link.control_command(done);
        let summary = link.observability().journal().summary();
        assert_eq!(summary.by_kind.get("CommandIssued"), Some(&2));
        assert_eq!(summary.by_kind.get("CommandCompleted"), Some(&2));
        let h = link
            .observability()
            .histograms()
            .get("link.command")
            .expect("link.command histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), done.saturating_since(SimTime::ZERO));
        let timeline = link.wire_timeline().expect("wire timeline enabled");
        assert_eq!(
            timeline.buckets.iter().copied().sum::<SimDuration>() + timeline.overflow,
            link.busy_time()
        );
    }

    #[test]
    fn faulted_command_journals_injection_and_retries() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        link.install_faults(FaultConfig {
            seed: 7,
            link_fault_rate: 1.0,
            ..FaultConfig::disabled()
        });
        link.configure_observability(&nds_sim::ObsConfig::full());
        for _ in 0..8 {
            link.try_transfer(4096, SimTime::ZERO).unwrap();
        }
        let summary = link.observability().journal().summary();
        assert_eq!(summary.by_kind.get("FaultInjected"), Some(&8));
        assert_eq!(
            summary.by_kind.get("RetryScheduled").copied().unwrap_or(0),
            link.stats().get("retries.link")
        );
    }

    #[test]
    fn backoff_doubles_between_retries() {
        // Budget exactly covers a 2-failure fault: completion must include
        // 3 occupancies + backoff + 2*backoff. Find a seed/command with
        // failures == 2 by scanning the plan deterministically.
        let cfg = FaultConfig {
            seed: 1,
            link_fault_rate: 1.0,
            ..FaultConfig::disabled()
        };
        let mut probe = nds_faults::FaultPlan::new(cfg);
        let mut skip = 0;
        let failures = loop {
            match probe.next_link_fault() {
                LinkFault::Timeout { failures } | LinkFault::DroppedCompletion { failures } => {
                    if failures == 2 {
                        break failures;
                    }
                }
                LinkFault::None => unreachable!("rate 1.0"),
            }
            skip += 1;
        };
        assert_eq!(failures, 2);
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        link.install_faults(cfg);
        let mut at = SimTime::ZERO;
        for _ in 0..skip {
            at = link.try_transfer(4096, at).unwrap();
        }
        let start = link.drained_at();
        let done = link.try_transfer(4096, start).unwrap();
        let occ = link.occupancy(4096);
        let expect = start + occ * 3 + cfg.link_backoff + cfg.link_backoff * 2;
        assert_eq!(done, expect);
    }
}
