//! The interconnect bandwidth model.

use nds_sim::{Resource, SimDuration, SimTime, Stats, Throughput};
use serde::{Deserialize, Serialize};

/// Parameters of a host↔device link.
///
/// The model charges every transfer a fixed `per_command` overhead (command
/// submission, doorbell, DMA setup, completion) plus `bytes / peak` of wire
/// time. Effective bandwidth is therefore
/// `peak × bytes / (bytes + peak × per_command)` — the classic
/// request-size-amortization curve behind the paper's \[P2\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Peak wire bandwidth.
    pub peak: Throughput,
    /// Fixed per-command/transaction overhead.
    pub per_command: SimDuration,
}

impl LinkConfig {
    /// The paper's NVMe-over-Fabrics path: a Mellanox 40 Gbps NIC over
    /// PCIe 3.0 ×8 (§6.1). Peak ≈ 4.7 GiB/s; the 3.4 µs per-command overhead
    /// is fitted so a 32 KB request achieves ≈66% of peak and a 2 MB request
    /// ≈99% — the two points §2.1 \[P2\] reports.
    pub fn nvmeof_40g() -> Self {
        LinkConfig {
            peak: Throughput::mib_per_sec(4800.0),
            per_command: SimDuration::from_nanos(3_400),
        }
    }

    /// A PCIe 3.0 ×16 host↔GPU path (H2D copies), ≈12 GiB/s with a smaller
    /// per-transfer cost.
    pub fn pcie3_x16() -> Self {
        LinkConfig {
            peak: Throughput::mib_per_sec(12_000.0),
            per_command: SimDuration::from_nanos(1_500),
        }
    }

    /// The equivalent "overhead bytes" of the per-command cost: the transfer
    /// size at which half of peak bandwidth is achieved.
    pub fn overhead_bytes(&self) -> f64 {
        self.peak.bytes_per_sec_f64() * self.per_command.as_secs_f64()
    }
}

/// A serially-occupied host↔device link with per-command overhead.
///
/// # Example
///
/// ```
/// use nds_interconnect::{Link, LinkConfig};
/// use nds_sim::SimTime;
///
/// let mut link = Link::new(LinkConfig::nvmeof_40g());
/// let t1 = link.transfer(2 * 1024 * 1024, SimTime::ZERO);
/// let t2 = link.transfer(2 * 1024 * 1024, SimTime::ZERO); // queues behind t1
/// assert!(t2 > t1);
/// assert_eq!(link.stats().get("link.commands"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    wire: Resource,
    stats: Stats,
}

impl Link {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            wire: Resource::new("link"),
            stats: Stats::new(),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Counters: `link.commands`, `link.bytes`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Time one transfer of `bytes` occupies the link (overhead + wire time).
    pub fn occupancy(&self, bytes: u64) -> SimDuration {
        self.config.per_command + self.config.peak.time_for_bytes(bytes)
    }

    /// The effective bandwidth a single command of `bytes` achieves.
    pub fn effective_bandwidth(&self, bytes: u64) -> Throughput {
        Throughput::from_bytes_over(bytes, self.occupancy(bytes))
    }

    /// Schedules one command moving `bytes`, ready at `ready`; returns the
    /// completion instant. Commands serialize FIFO on the wire.
    pub fn transfer(&mut self, bytes: u64, ready: SimTime) -> SimTime {
        self.stats.add("link.commands", 1);
        self.stats.add("link.bytes", bytes);
        self.wire.acquire(ready, self.occupancy(bytes))
    }

    /// Schedules a zero-payload command (e.g. `open_space`), charging only
    /// the per-command overhead.
    pub fn control_command(&mut self, ready: SimTime) -> SimTime {
        self.stats.add("link.commands", 1);
        self.wire.acquire(ready, self.config.per_command)
    }

    /// The instant the wire drains all committed transfers.
    pub fn drained_at(&self) -> SimTime {
        self.wire.next_free()
    }

    /// Total wire occupancy accumulated since the last timing reset — the
    /// throughput cost of the scheduled transfers.
    pub fn busy_time(&self) -> SimDuration {
        self.wire.busy_time()
    }

    /// Resets occupancy to idle at t = 0, keeping counters.
    pub fn reset_timing(&mut self) {
        self.wire.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_p2_curve_points() {
        let link = Link::new(LinkConfig::nvmeof_40g());
        let peak = link.config().peak.bytes_per_sec_f64();
        let at_32k = link.effective_bandwidth(32 * 1024).bytes_per_sec_f64() / peak;
        let at_2m = link
            .effective_bandwidth(2 * 1024 * 1024)
            .bytes_per_sec_f64()
            / peak;
        assert!(
            (at_32k - 0.66).abs() < 0.04,
            "32 KB should reach ~66% of peak, got {:.0}%",
            at_32k * 100.0
        );
        assert!(
            at_2m > 0.98,
            "2 MB should saturate, got {:.0}%",
            at_2m * 100.0
        );
    }

    #[test]
    fn effective_bandwidth_is_monotonic_in_size() {
        let link = Link::new(LinkConfig::nvmeof_40g());
        let mut last = 0.0;
        for shift in 9..24 {
            let bw = link.effective_bandwidth(1 << shift).bytes_per_sec_f64();
            assert!(bw > last);
            last = bw;
        }
    }

    #[test]
    fn many_small_commands_cost_more_than_one_large() {
        let mut a = Link::new(LinkConfig::nvmeof_40g());
        let mut b = Link::new(LinkConfig::nvmeof_40g());
        let total: u64 = 8 * 1024 * 1024;
        let small = total / 256;
        let mut t_many = SimTime::ZERO;
        for _ in 0..256 {
            t_many = a.transfer(small, t_many);
        }
        let t_one = b.transfer(total, SimTime::ZERO);
        assert!(t_many > t_one);
        assert_eq!(a.stats().get("link.bytes"), b.stats().get("link.bytes"));
        assert_eq!(a.stats().get("link.commands"), 256);
    }

    #[test]
    fn transfers_serialize_fifo() {
        let mut link = Link::new(LinkConfig::pcie3_x16());
        let t1 = link.transfer(1 << 20, SimTime::ZERO);
        let t2 = link.transfer(1 << 20, SimTime::ZERO);
        assert_eq!(t2 - t1, t1 - SimTime::ZERO);
    }

    #[test]
    fn control_commands_charge_overhead_only() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        let t = link.control_command(SimTime::ZERO);
        assert_eq!(t, SimTime::ZERO + link.config().per_command);
    }

    #[test]
    fn overhead_bytes_is_half_peak_point() {
        let cfg = LinkConfig::nvmeof_40g();
        let link = Link::new(cfg);
        let half_point = cfg.overhead_bytes() as u64;
        let eff = link.effective_bandwidth(half_point).bytes_per_sec_f64();
        assert!((eff / cfg.peak.bytes_per_sec_f64() - 0.5).abs() < 0.01);
    }

    #[test]
    fn reset_timing_keeps_counters() {
        let mut link = Link::new(LinkConfig::nvmeof_40g());
        link.transfer(4096, SimTime::ZERO);
        link.reset_timing();
        assert_eq!(link.drained_at(), SimTime::ZERO);
        assert_eq!(link.stats().get("link.commands"), 1);
    }
}
