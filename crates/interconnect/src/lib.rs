//! The system interconnect and NVMe-style command set of the NDS prototype.
//!
//! Two of the paper's three performance problems live on the interconnect:
//!
//! * **\[P2\] Underutilization of interconnect bandwidth** (§2.1): every I/O
//!   command pays a fixed transaction overhead, so small requests cannot
//!   saturate the link — the paper measures that a modern NVMe interconnect
//!   saturates only when requests exceed ~2 MB and that 32 KB row fetches
//!   reach just 66% of peak. [`Link`] reproduces that curve with a
//!   per-command overhead plus a peak-bandwidth term.
//! * **The command interface itself** (§5.3.1): NDS extends NVMe with
//!   multi-dimensional read/write commands and three space-management
//!   commands (`open_space`, `close_space`, `delete_space`), distinguished by
//!   a reserved bit in the first command word. [`NvmeCommand`] models the
//!   full extended command set, including the paper's limits (coordinates up
//!   to 32 dimensions, 2²⁴ elements per dimension), and [`QueuePair`] models
//!   the submission/completion queues commands travel through.
//!
//! # Example
//!
//! ```
//! use nds_interconnect::{Link, LinkConfig};
//! use nds_sim::SimTime;
//!
//! let mut link = Link::new(LinkConfig::nvmeof_40g());
//! // A 32 KB transfer achieves roughly two thirds of peak (paper §2.1 \[P2\])…
//! let small = link.effective_bandwidth(32 * 1024);
//! // …while a 2 MB transfer saturates the link.
//! let large = link.effective_bandwidth(2 * 1024 * 1024);
//! assert!(small.bytes_per_sec_f64() < 0.70 * link.config().peak.bytes_per_sec_f64());
//! assert!(large.bytes_per_sec_f64() > 0.95 * link.config().peak.bytes_per_sec_f64());
//! # let _ = link.transfer(4096, SimTime::ZERO);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod command;
mod link;
mod queue;
mod wfq;
pub mod wire;

pub use command::{CommandError, NvmeCommand, SpaceId, MAX_DIMENSIONS, MAX_ELEMENTS_PER_DIM};
pub use link::{Link, LinkConfig, LinkError};
pub use queue::{QueueError, QueuePair, DEFAULT_QUEUE_DEPTH};
pub use wfq::{WfqError, WfqScheduler, COST_SCALE};
pub use wire::WireError;
