//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig2` | Fig. 2(a)(b): row-store vs sub-block blocked MM cost |
//! | `fig3` | Fig. 3: processing rates / bandwidths vs matrix size |
//! | `fig9` | Fig. 9(a–d): row/column/submatrix/write micro-benchmarks |
//! | `fig10` | Fig. 10(a)(b): end-to-end speedups and kernel idle time |
//! | `overhead` | §7.3: STL latency and space overhead |
//! | `tenants` | multi-tenant WFQ traffic engine: shares, depth, fairness |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use nds_core::{ElementType, Shape};
use nds_sim::{ObsConfig, RunReport, TraceExport};
use nds_system::{DatasetId, StorageFrontEnd, SystemError};

/// Splits `--<flag> <path>` (or `--<flag>=<path>`) out of a raw argument
/// list, returning the path if present plus the remaining arguments with
/// the flag removed — so each binary's positional parsing is unaffected.
fn take_path_flag(flag: &str, args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    let prefix = format!("{flag}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == flag {
            path = it.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix(&prefix) {
            path = Some(PathBuf::from(p));
        } else {
            rest.push(a);
        }
    }
    (path, rest)
}

/// Splits `--report <path>` (or `--report=<path>`) out of a raw argument
/// list (as from `std::env::args().skip(1)`).
pub fn take_report_path(args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    take_path_flag("--report", args)
}

/// Splits `--trace <path>` (or `--trace=<path>`) out of a raw argument
/// list: the destination for a Chrome trace-event (Perfetto-loadable)
/// export of the run's causal per-command traces.
pub fn take_trace_path(args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    take_path_flag("--trace", args)
}

/// The observability configuration a bench run should build its systems
/// with: causal tracing on top of full instrumentation when a trace was
/// requested, full instrumentation for a report alone, disabled (one dead
/// branch per hook) otherwise.
pub fn obs_for(report: Option<&PathBuf>, trace: Option<&PathBuf>) -> ObsConfig {
    if trace.is_some() {
        ObsConfig::traced()
    } else if report.is_some() {
        ObsConfig::full()
    } else {
        ObsConfig::disabled()
    }
}

/// Appends `sys`'s causal trace export (if tracing was on) to `traces`
/// under `label` — the label becomes the Chrome process name, so use
/// `"<panel>.<architecture>"` style names.
pub fn collect_trace<S: StorageFrontEnd + ?Sized>(
    traces: &mut Vec<(String, TraceExport)>,
    label: &str,
    sys: &S,
) {
    if let Some(export) = sys.trace_export() {
        traces.push((label.to_string(), export));
    }
}

/// Writes the collected trace exports to `path` as deterministic Chrome
/// trace-event JSON (loadable in Perfetto / `chrome://tracing`).
///
/// # Errors
///
/// I/O errors from creating or writing the file.
pub fn write_trace(path: &Path, systems: &[(String, TraceExport)]) -> std::io::Result<()> {
    std::fs::write(path, nds_prof::render(systems))
}

/// Writes a run report's deterministic JSON to `path` (trailing newline
/// included, so repeated runs diff clean against each other).
///
/// # Errors
///
/// I/O errors from creating or writing the file.
pub fn write_report(path: &Path, report: &RunReport) -> std::io::Result<()> {
    let mut json = report.to_json();
    json.push('\n');
    std::fs::write(path, json)
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a header row plus separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| (*c).to_owned()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Creates an `n × n` f64 dataset filled with a deterministic byte pattern
/// and writes it through the front-end (the Fig. 9 microbenchmark setup).
///
/// # Errors
///
/// Propagates front-end errors.
///
/// # Panics
///
/// Panics if the dataset byte volume does not fit in memory.
pub fn setup_matrix_f64<S: StorageFrontEnd + ?Sized>(
    sys: &mut S,
    n: u64,
) -> Result<DatasetId, SystemError> {
    let shape = Shape::new([n, n]);
    let id = sys.create_dataset(shape.clone(), ElementType::F64)?;
    let bytes: Vec<u8> = (0..n * n * 8).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[n, n], &bytes)?;
    Ok(id)
}

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn report_flag_is_stripped_wherever_it_sits() {
        let (path, rest) = take_report_path(
            ["a", "--report", "out.json", "b"]
                .map(String::from)
                .to_vec(),
        );
        assert_eq!(path.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(rest, ["a", "b"]);

        let (path, rest) = take_report_path(["--report=r.json"].map(String::from).to_vec());
        assert_eq!(path.as_deref(), Some(std::path::Path::new("r.json")));
        assert!(rest.is_empty());

        let (path, rest) = take_report_path(["c"].map(String::from).to_vec());
        assert!(path.is_none());
        assert_eq!(rest, ["c"]);
        assert!(!obs_for(path.as_ref(), None).any_enabled());
    }

    #[test]
    fn trace_flag_enables_tracing() {
        let (trace, rest) =
            take_trace_path(["a", "--trace", "t.json", "b"].map(String::from).to_vec());
        assert_eq!(trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(rest, ["a", "b"]);
        let obs = obs_for(None, trace.as_ref());
        assert!(obs.tracing && obs.journal && obs.timelines);
        assert!(!obs_for(None, None).tracing);
    }

    #[test]
    fn setup_matrix_round_trips() {
        use nds_system::{BaselineSystem, SystemConfig};
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let id = setup_matrix_f64(&mut sys, 32).unwrap();
        let shape = Shape::new([32, 32]);
        let out = sys.read(id, &shape, &[0, 0], &[32, 32]).unwrap();
        assert_eq!(out.data[0], 0);
        assert_eq!(out.data[1], 1);
    }
}
