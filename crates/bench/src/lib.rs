//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig2` | Fig. 2(a)(b): row-store vs sub-block blocked MM cost |
//! | `fig3` | Fig. 3: processing rates / bandwidths vs matrix size |
//! | `fig9` | Fig. 9(a–d): row/column/submatrix/write micro-benchmarks |
//! | `fig10` | Fig. 10(a)(b): end-to-end speedups and kernel idle time |
//! | `overhead` | §7.3: STL latency and space overhead |
//! | `tenants` | multi-tenant WFQ traffic engine: shares, depth, fairness |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use nds_core::{ElementType, Shape};
use nds_sim::{ObsConfig, RunReport, TraceExport};
use nds_system::{DatasetId, StorageFrontEnd, SystemError};

/// Splits `--<flag> <path>` (or `--<flag>=<path>`) out of a raw argument
/// list, returning the path if present plus the remaining arguments with
/// the flag removed — so each binary's positional parsing is unaffected.
fn take_path_flag(flag: &str, args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    let prefix = format!("{flag}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == flag {
            path = it.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix(&prefix) {
            path = Some(PathBuf::from(p));
        } else {
            rest.push(a);
        }
    }
    (path, rest)
}

/// Splits `--report <path>` (or `--report=<path>`) out of a raw argument
/// list (as from `std::env::args().skip(1)`).
pub fn take_report_path(args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    take_path_flag("--report", args)
}

/// Splits `--trace <path>` (or `--trace=<path>`) out of a raw argument
/// list: the destination for a Chrome trace-event (Perfetto-loadable)
/// export of the run's causal per-command traces.
pub fn take_trace_path(args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    take_path_flag("--trace", args)
}

/// Splits `--metrics <path>` (or `--metrics=<path>`) out of a raw
/// argument list: the destination for the run's windowed-telemetry JSON
/// ([`RunReport::metrics_json`]).
pub fn take_metrics_path(args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    take_path_flag("--metrics", args)
}

/// Splits `--dashboard <path>` (or `--dashboard=<path>`) out of a raw
/// argument list: the destination for the run's static HTML telemetry
/// dashboard (a sibling `<stem>.data.js` is written next to it).
pub fn take_dashboard_path(args: Vec<String>) -> (Option<PathBuf>, Vec<String>) {
    take_path_flag("--dashboard", args)
}

/// The observability configuration a bench run should build its systems
/// with: causal tracing on top of full instrumentation when a trace was
/// requested, full instrumentation for a report alone, disabled (one dead
/// branch per hook) otherwise.
pub fn obs_for(report: Option<&PathBuf>, trace: Option<&PathBuf>) -> ObsConfig {
    if trace.is_some() {
        ObsConfig::traced()
    } else if report.is_some() {
        ObsConfig::full()
    } else {
        ObsConfig::disabled()
    }
}

/// [`obs_for`] extended with the windowed metric sampler: when `--metrics`
/// or `--dashboard` was requested the sampler rides on full (or traced)
/// instrumentation, since the standard series derive from journal events.
pub fn obs_for_run(
    report: Option<&PathBuf>,
    trace: Option<&PathBuf>,
    metrics: Option<&PathBuf>,
    dashboard: Option<&PathBuf>,
) -> ObsConfig {
    let base = if trace.is_some() || report.is_some() || metrics.is_some() || dashboard.is_some() {
        obs_for(report.or(metrics).or(dashboard), trace)
    } else {
        ObsConfig::disabled()
    };
    if metrics.is_some() || dashboard.is_some() {
        base.with_metrics()
    } else {
        base
    }
}

/// Appends `sys`'s causal trace export (if tracing was on) to `traces`
/// under `label` — the label becomes the Chrome process name, so use
/// `"<panel>.<architecture>"` style names.
pub fn collect_trace<S: StorageFrontEnd + ?Sized>(
    traces: &mut Vec<(String, TraceExport)>,
    label: &str,
    sys: &S,
) {
    if let Some(export) = sys.trace_export() {
        traces.push((label.to_string(), export));
    }
}

/// Writes the collected trace exports to `path` as deterministic Chrome
/// trace-event JSON (loadable in Perfetto / `chrome://tracing`).
///
/// # Errors
///
/// I/O errors from creating or writing the file.
pub fn write_trace(path: &Path, systems: &[(String, TraceExport)]) -> std::io::Result<()> {
    std::fs::write(path, nds_prof::render(systems))
}

/// Writes a run report's deterministic JSON to `path` (trailing newline
/// included, so repeated runs diff clean against each other).
///
/// # Errors
///
/// I/O errors from creating or writing the file.
pub fn write_report(path: &Path, report: &RunReport) -> std::io::Result<()> {
    let mut json = report.to_json();
    json.push('\n');
    std::fs::write(path, json)
}

/// Writes the run's windowed-telemetry JSON
/// ([`RunReport::metrics_json`]) to `path` — the `--metrics` artifact,
/// byte-identical across repeated runs.
///
/// # Errors
///
/// I/O errors from creating or writing the file.
pub fn write_metrics(path: &Path, report: &RunReport) -> std::io::Result<()> {
    std::fs::write(path, report.metrics_json())
}

/// Writes the run's telemetry dashboard: the static page to `path` and
/// the verbatim-embedded metrics JSON to a sibling `<stem>.data.js` the
/// page references relatively — the `--dashboard` artifact, both files
/// byte-identical across repeated runs.
///
/// # Errors
///
/// I/O errors from creating or writing either file.
pub fn write_dashboard(path: &Path, report: &RunReport) -> std::io::Result<()> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dashboard");
    let data_name = format!("{stem}.data.js");
    let data_path = path.with_file_name(&data_name);
    std::fs::write(path, nds_prof::html_page(&data_name))?;
    std::fs::write(data_path, nds_prof::run_data_js(&report.metrics_json()))
}

/// Emits `--metrics` / `--dashboard` artifacts for a finished run, if
/// requested. Call once per bench binary after assembling the combined
/// [`RunReport`].
///
/// # Errors
///
/// I/O errors from writing either artifact.
pub fn write_telemetry(
    metrics: Option<&PathBuf>,
    dashboard: Option<&PathBuf>,
    report: &RunReport,
) -> std::io::Result<()> {
    if let Some(path) = metrics {
        write_metrics(path, report)?;
    }
    if let Some(path) = dashboard {
        write_dashboard(path, report)?;
    }
    Ok(())
}

/// A wall-clock stopwatch for the `commands_per_wall_second` trend line
/// every bench binary prints. Wall time never enters modeled artifacts —
/// it only feeds the parseable stdout summary `bench_snapshot.sh` scrapes
/// into the BENCH trajectory.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    // nds-lint: allow(D1, wall-clock trend measurement never enters modeled time or artifacts)
    start: std::time::Instant,
}

impl WallClock {
    /// Starts the stopwatch.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        WallClock {
            // nds-lint: allow(D1, wall-clock trend measurement never enters modeled time or artifacts)
            start: std::time::Instant::now(),
        }
    }

    /// Whole commands simulated per elapsed wall second (0 when no time
    /// has passed is impossible: the divisor is clamped to 1 ns).
    pub fn commands_per_second(&self, commands: u64) -> u64 {
        // nds-lint: allow(D1, wall-clock trend measurement never enters modeled time or artifacts)
        let nanos = self.start.elapsed().as_nanos().max(1);
        (u128::from(commands) * 1_000_000_000u128 / nanos) as u64
    }

    /// Prints the parseable wall-clock trend line:
    /// `commands_per_wall_second=<rate> commands=<n>`.
    pub fn print_rate(&self, commands: u64) {
        println!(
            "commands_per_wall_second={} commands={}",
            self.commands_per_second(commands),
            commands
        );
    }
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a header row plus separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| (*c).to_owned()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Creates an `n × n` f64 dataset filled with a deterministic byte pattern
/// and writes it through the front-end (the Fig. 9 microbenchmark setup).
///
/// # Errors
///
/// Propagates front-end errors.
///
/// # Panics
///
/// Panics if the dataset byte volume does not fit in memory.
pub fn setup_matrix_f64<S: StorageFrontEnd + ?Sized>(
    sys: &mut S,
    n: u64,
) -> Result<DatasetId, SystemError> {
    let shape = Shape::new([n, n]);
    let id = sys.create_dataset(shape.clone(), ElementType::F64)?;
    let bytes: Vec<u8> = (0..n * n * 8).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[n, n], &bytes)?;
    Ok(id)
}

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn report_flag_is_stripped_wherever_it_sits() {
        let (path, rest) = take_report_path(
            ["a", "--report", "out.json", "b"]
                .map(String::from)
                .to_vec(),
        );
        assert_eq!(path.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(rest, ["a", "b"]);

        let (path, rest) = take_report_path(["--report=r.json"].map(String::from).to_vec());
        assert_eq!(path.as_deref(), Some(std::path::Path::new("r.json")));
        assert!(rest.is_empty());

        let (path, rest) = take_report_path(["c"].map(String::from).to_vec());
        assert!(path.is_none());
        assert_eq!(rest, ["c"]);
        assert!(!obs_for(path.as_ref(), None).any_enabled());
    }

    #[test]
    fn trace_flag_enables_tracing() {
        let (trace, rest) =
            take_trace_path(["a", "--trace", "t.json", "b"].map(String::from).to_vec());
        assert_eq!(trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(rest, ["a", "b"]);
        let obs = obs_for(None, trace.as_ref());
        assert!(obs.tracing && obs.journal && obs.timelines);
        assert!(!obs_for(None, None).tracing);
    }

    #[test]
    fn metrics_and_dashboard_flags_enable_the_sampler() {
        let (metrics, rest) =
            take_metrics_path(["--metrics", "m.json", "x"].map(String::from).to_vec());
        assert_eq!(metrics.as_deref(), Some(std::path::Path::new("m.json")));
        assert_eq!(rest, ["x"]);
        let (dash, _) = take_dashboard_path(["--dashboard=d.html"].map(String::from).to_vec());
        assert_eq!(dash.as_deref(), Some(std::path::Path::new("d.html")));

        let obs = obs_for_run(None, None, metrics.as_ref(), None);
        assert!(obs.metrics && obs.journal, "metrics ride on full obs");
        let obs = obs_for_run(None, None, None, dash.as_ref());
        assert!(obs.metrics);
        let obs = obs_for_run(None, Some(&PathBuf::from("t.json")), metrics.as_ref(), None);
        assert!(obs.metrics && obs.tracing);
        assert!(!obs_for_run(None, None, None, None).any_enabled());
    }

    #[test]
    fn wall_clock_rate_is_finite_and_parseable() {
        let clock = WallClock::start();
        let rate = clock.commands_per_second(1000);
        assert!(rate > 0, "clamped divisor keeps the rate positive");
    }

    #[test]
    fn setup_matrix_round_trips() {
        use nds_system::{BaselineSystem, SystemConfig};
        let mut sys = BaselineSystem::new(SystemConfig::small_test());
        let id = setup_matrix_f64(&mut sys, 32).unwrap();
        let shape = Shape::new([32, 32]);
        let out = sys.read(id, &shape, &[0, 0], &[32, 32]).unwrap();
        assert_eq!(out.data[0], 0);
        assert_eq!(out.data[1], 1);
    }

    #[test]
    fn dashboard_artifacts_are_byte_identical_across_runs() {
        use nds_system::{SoftwareNds, SystemConfig};
        // End to end: instrumented run → metrics JSON → dashboard page and
        // data payload, twice; every byte must match.
        let run_once = || {
            let obs = ObsConfig::full().with_metrics();
            let mut sys = SoftwareNds::new(SystemConfig::small_test().with_observability(obs));
            let id = setup_matrix_f64(&mut sys, 64).unwrap();
            let shape = Shape::new([64, 64]);
            sys.read(id, &shape, &[1, 1], &[16, 16]).unwrap();
            let report = sys.run_report();
            let metrics = report.metrics_json();
            (
                nds_prof::html_page("run.data.js"),
                nds_prof::run_data_js(&metrics),
                metrics,
            )
        };
        let (page_a, data_a, metrics_a) = run_once();
        let (page_b, data_b, metrics_b) = run_once();
        assert_eq!(metrics_a, metrics_b, "metrics JSON drifted between runs");
        assert_eq!(page_a, page_b, "dashboard HTML drifted between runs");
        assert_eq!(data_a, data_b, "dashboard data payload drifted");
        assert!(data_a.starts_with("const RUN = {"));
        assert!(metrics_a.contains("\"host.ops\""));
    }
}
