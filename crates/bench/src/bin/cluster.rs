//! Sharded-cluster bench: the same seeded command mix replayed against a
//! healthy N-device cluster and against one with a device-kill fault plan,
//! side by side.
//!
//! Prints one row per run — ops, app bytes, modeled I/O time, commands,
//! degraded reads, re-replication traffic — plus `healthy:`/`degraded:`
//! summary lines with modeled MiB/s that `scripts/bench_snapshot.sh`
//! parses into the throughput trajectory.
//!
//! Usage: `cargo run --release -p nds-bench --bin cluster
//!         [-- [--devices N] [--replicas K] [--ops N] [--seed S]
//!             [--shard-rows R] [--kill DEV] [--report <path>] [--trace <path>]]`
//!
//! With `--report` both runs' full reports (cluster + every device) are
//! merged under `healthy.`/`degraded.` prefixes and written as
//! deterministic JSON; with `--trace` the degraded run's per-device causal
//! traces are exported. Both artifacts are byte-identical across repeated
//! runs of the same seed — `scripts/check.sh` runs this binary twice and
//! diffs.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{
    header, obs_for_run, row, take_dashboard_path, take_metrics_path, take_report_path,
    take_trace_path, write_report, write_telemetry, write_trace, WallClock,
};
use nds_faults::ClusterFaultPlan;
use nds_sim::RunReport;
use nds_system::{
    ClusterConfig, HardwareNds, NdsCluster, StorageFrontEnd, SystemConfig, SystemError,
};
use nds_workloads::cluster::{cluster_dataset, cluster_mix, payload_byte, ClusterOp};

fn take_u64_flag(flag: &str, default: u64, args: Vec<String>) -> (u64, Vec<String>) {
    let prefix = format!("{flag}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut value = default;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == flag {
            value = it.next().and_then(|v| v.parse().ok()).unwrap_or(default);
        } else if let Some(v) = a.strip_prefix(&prefix) {
            value = v.parse().unwrap_or(default);
        } else {
            rest.push(a);
        }
    }
    (value, rest)
}

struct RunSummary {
    ops: u64,
    bytes: u64,
    io_ns: u64,
    commands: u64,
}

/// Replays the mix against `cluster`, accumulating modeled time and bytes.
fn replay(
    cluster: &mut NdsCluster<HardwareNds>,
    mix: &[ClusterOp],
) -> Result<RunSummary, SystemError> {
    let (shape, element) = cluster_dataset();
    let id = cluster.create_dataset(shape.clone(), element)?;
    let esize = element.size() as u64;
    let mut sum = RunSummary {
        ops: 0,
        bytes: 0,
        io_ns: 0,
        commands: 0,
    };
    let mut buf = Vec::new();
    for op in mix {
        if op.write {
            let elems: u64 = op.sub_dims.iter().product();
            let data: Vec<u8> = (0..elems * esize)
                .map(|i| payload_byte(op.salt, i))
                .collect();
            let out = cluster.write(id, &shape, &op.coord, &op.sub_dims, &data)?;
            sum.bytes += out.bytes;
            sum.io_ns += out.latency.as_nanos();
            sum.commands += out.commands;
        } else {
            let m = cluster.read_into(id, &shape, &op.coord, &op.sub_dims, &mut buf)?;
            sum.bytes += m.bytes;
            sum.io_ns += m.io_latency.as_nanos();
            sum.commands += m.commands;
        }
        sum.ops += 1;
    }
    Ok(sum)
}

fn mib_s(bytes: u64, io_ns: u64) -> f64 {
    if io_ns == 0 {
        0.0
    } else {
        (bytes as f64 / (1 << 20) as f64) / (io_ns as f64 / 1e9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (report_path, args) = take_report_path(args);
    let (trace_path, args) = take_trace_path(args);
    let (devices, args) = take_u64_flag("--devices", 4, args);
    let (replicas, args) = take_u64_flag("--replicas", 2, args);
    let (ops, args) = take_u64_flag("--ops", 96, args);
    let (seed, args) = take_u64_flag("--seed", 7, args);
    let (shard_rows, args) = take_u64_flag("--shard-rows", 24, args);
    let (metrics_path, args) = take_metrics_path(args);
    let (dashboard_path, args) = take_dashboard_path(args);
    let (kill, _args) = take_u64_flag("--kill", 0, args);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let clock = WallClock::start();

    let mix = cluster_mix(seed, ops as usize, 60);
    let base = ClusterConfig::new(devices as usize, replicas as usize)
        .with_shard_rows(shard_rows)
        .with_seed(seed)
        .with_observability(obs);
    let build = |cfg: ClusterConfig| {
        NdsCluster::new(cfg, |_| {
            HardwareNds::new(SystemConfig::small_test().with_observability(obs))
        })
    };

    let mut healthy = build(base.clone());
    let h = replay(&mut healthy, &mix).expect("healthy run");

    // Kill one device halfway through the mix (+1 for create_dataset).
    let plan = ClusterFaultPlan::kill_at(ops / 2, kill as u32);
    let mut degraded = build(base.with_plan(plan));
    let d = replay(&mut degraded, &mix).expect("degraded run");

    println!(
        "# cluster — {devices} devices, k={replicas}, {ops} ops, seed {seed}, \
         shard rows {shard_rows}, kill device {kill} at op {}\n",
        ops / 2
    );
    header(&[
        "run",
        "ops",
        "bytes",
        "io ns",
        "cmds",
        "degraded reads",
        "rereplications",
        "rereplicated bytes",
    ]);
    let hs = healthy.stats();
    let ds = degraded.stats();
    for (name, sum, st) in [("healthy", &h, &hs), ("degraded", &d, &ds)] {
        row(&[
            name.to_string(),
            sum.ops.to_string(),
            sum.bytes.to_string(),
            sum.io_ns.to_string(),
            sum.commands.to_string(),
            st.get("cluster.degraded_reads").to_string(),
            st.get("cluster.rereplications").to_string(),
            st.get("cluster.rereplicated_bytes").to_string(),
        ]);
    }
    println!(
        "\nhealthy: ops={} bytes={} io_ns={} mib_s={:.1}",
        h.ops,
        h.bytes,
        h.io_ns,
        mib_s(h.bytes, h.io_ns)
    );
    println!(
        "degraded: ops={} bytes={} io_ns={} mib_s={:.1} rereplicated_bytes={}",
        d.ops,
        d.bytes,
        d.io_ns,
        mib_s(d.bytes, d.io_ns),
        ds.get("cluster.rereplicated_bytes")
    );
    clock.print_rate(h.commands + d.commands);

    if report_path.is_some() || metrics_path.is_some() || dashboard_path.is_some() {
        let mut report = RunReport::new();
        report.set_meta("bench", "cluster");
        report.merge_prefixed("healthy.", &healthy.full_report());
        report.merge_prefixed("degraded.", &degraded.full_report());
        if let Some(path) = &report_path {
            write_report(path, &report).expect("write report");
            println!("report written to {}", path.display());
        }
        write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &report)
            .expect("telemetry");
    }
    if let Some(path) = &trace_path {
        let exports = degraded.device_trace_exports();
        assert!(!exports.is_empty(), "tracing was on");
        write_trace(path, &exports).expect("write trace");
        println!("trace written to {}", path.display());
    }
}
