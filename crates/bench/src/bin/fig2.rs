//! Regenerates **Fig. 2** of the paper: the motivation experiment — blocked
//! matrix multiplication with row-store inputs vs sub-block inputs.
//!
//! * **(a)** data already in main memory: the row-store pipeline needs an
//!   extra CPU stage to form the kernel's submatrices; the paper measures
//!   2.11× the sub-block configuration's time.
//! * **(b)** data fetched from the SSD: the row-store layout additionally
//!   underutilizes the interconnect and the device's channels; the paper
//!   measures 1.92× more fetch time than an optimal (sub-block) layout.
//!
//! Usage: `cargo run --release -p nds-bench --bin fig2 [-- --report <path>]`
//!
//! With `--report <path>` the SSD-backed configuration of panel (b) runs
//! fully instrumented and the merged run-report JSON is written to `path`.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_accel::ComputeEngine;
use nds_bench::{
    collect_trace, header, obs_for_run, row, setup_matrix_f64, take_dashboard_path,
    take_metrics_path, take_report_path, take_trace_path, write_report, write_telemetry,
    write_trace, WallClock,
};
use nds_core::Shape;
use nds_host::pipeline::{self, StageTimes};
use nds_host::{CpuModel, MemoryBus};
use nds_interconnect::LinkConfig;
use nds_sim::{Journal, ObsConfig, RunReport, SimDuration, TraceExport};
use nds_system::{BaselineSystem, OracleSystem, StorageFrontEnd, SystemConfig};

/// Matrix side (scaled from the paper's 32,768) and kernel tile (scaled
/// from 8,192) — the same 4× blocking ratio.
const N: u64 = 8192;
const TILE: u64 = 2048;

fn stage_report(label: &str, stages: &[(&str, SimDuration)], total: SimDuration) {
    let cells: Vec<String> = std::iter::once(label.to_owned())
        .chain(stages.iter().map(|(n, d)| format!("{n} {d}")))
        .chain(std::iter::once(format!("total {total}")))
        .collect();
    row(&cells);
}

/// Runs one panel-(a) pipeline configuration, journaling every stage
/// interval when `tracing`, and returns the schedule plus (if traced) a
/// host-only [`TraceExport`]: the pipeline has no flash lanes, so the
/// channel/bank tables stay empty and the makespan is the end-to-end time.
fn run_pipeline(
    blocks: &[StageTimes],
    tracing: bool,
) -> (pipeline::PipelineResult, Option<TraceExport>) {
    let mut journal = if tracing {
        Journal::enabled(4096)
    } else {
        Journal::disabled(0)
    };
    let result = pipeline::run_journaled(blocks, &["marshal", "h2d", "kernel"], &mut journal);
    let export = tracing.then(|| TraceExport {
        events: journal.events().filter(|e| e.trace != 0).copied().collect(),
        channels: Vec::new(),
        banks: Vec::new(),
        makespan: result.total,
        tenants: Vec::new(),
    });
    (result, export)
}

fn fig_a(tracing: bool, traces: &mut Vec<(String, TraceExport)>) {
    println!(
        "## (a) data already in main memory — paper: row-store takes 2.11× the sub-block time\n"
    );
    let cpu = CpuModel::ryzen_3700x();
    let engine = ComputeEngine::tensor_cores().with_optimum_scaled((65536 / N).max(1));
    let h2d = LinkConfig::pcie3_x16();
    let tiles = N / TILE;
    let tile_bytes = TILE * TILE * 8;
    // Per kernel launch the pipeline moves two input tiles.
    let marshal = cpu.scatter_copy_time(TILE * 2, tile_bytes * 2);
    let h2d_time = h2d.per_command + h2d.peak.time_for_bytes(tile_bytes * 2);
    let kernel = engine.kernel_time(tile_bytes * 2, TILE);
    let steps = (tiles * tiles * tiles) as usize;

    let seq: Vec<StageTimes> = (0..steps)
        .map(|_| StageTimes::new([marshal, h2d_time, kernel]))
        .collect();
    let sub: Vec<StageTimes> = (0..steps)
        .map(|_| StageTimes::new([SimDuration::ZERO, h2d_time, kernel]))
        .collect();
    let (seq_run, seq_trace) = run_pipeline(&seq, tracing);
    let (sub_run, sub_trace) = run_pipeline(&sub, tracing);
    if let Some(export) = seq_trace {
        traces.push(("a.row-store".to_string(), export));
    }
    if let Some(export) = sub_trace {
        traces.push(("a.sub-block".to_string(), export));
    }
    header(&["configuration", "CPU stage", "H2D", "kernel", "end-to-end"]);
    stage_report(
        "row-store/sequential",
        &[("marshal", marshal), ("h2d", h2d_time), ("kernel", kernel)],
        seq_run.total,
    );
    stage_report(
        "sub-block",
        &[
            ("marshal", SimDuration::ZERO),
            ("h2d", h2d_time),
            ("kernel", kernel),
        ],
        sub_run.total,
    );
    println!(
        "\nrow-store / sub-block = {:.2}x (paper: 2.11x)",
        seq_run.total.as_secs_f64() / sub_run.total.as_secs_f64()
    );

    // §2.1 [P2]: the marshalling configuration also burns CPU-memory-bus
    // bandwidth — DMA in, copy (2x), DMA out vs. just DMA in and out.
    let mut seq_bus = MemoryBus::ddr4_dual_channel();
    seq_bus.dma(tile_bytes * 2);
    seq_bus.cpu_copy(tile_bytes * 2);
    seq_bus.dma(tile_bytes * 2);
    let mut sub_bus = MemoryBus::ddr4_dual_channel();
    sub_bus.dma(tile_bytes * 2);
    sub_bus.dma(tile_bytes * 2);
    println!(
        "memory-bus traffic per kernel launch: row-store {} MiB vs sub-block {} MiB ({:.1}x)\n",
        seq_bus.traffic_bytes() / 1024 / 1024,
        sub_bus.traffic_bytes() / 1024 / 1024,
        seq_bus.traffic_bytes() as f64 / sub_bus.traffic_bytes() as f64
    );
}

fn fig_b(obs: ObsConfig, report: &mut RunReport, traces: &mut Vec<(String, TraceExport)>) {
    println!(
        "## (b) data fetched from the SSD — paper: +1.92× fetch time for the row-store layout\n"
    );
    let config = SystemConfig::paper_scale().with_observability(obs);
    let shape = Shape::new([N, N]);

    // Row-store layout on the baseline SSD.
    let mut base = BaselineSystem::new(config.clone());
    let base_id = setup_matrix_f64(&mut base, N).expect("baseline setup");
    let b = base
        .read(base_id, &shape, &[1, 1], &[TILE, TILE])
        .expect("row-store tile fetch");

    // Optimal (sub-block) layout: the oracle stores kernel-shaped tiles.
    let mut oracle = OracleSystem::with_tile(config, vec![TILE, TILE]);
    let oracle_id = setup_matrix_f64(&mut oracle, N).expect("oracle setup");
    let o = oracle
        .read(oracle_id, &shape, &[1, 1], &[TILE, TILE])
        .expect("sub-block tile fetch");

    header(&["layout", "SSD fetch", "CPU restructure", "fetch ratio"]);
    row(&[
        "row-store/sequential".into(),
        format!("{}", b.io_latency),
        format!("{}", b.restructure),
        format!(
            "{:.2}x (paper: 1.92x)",
            b.io_latency.as_secs_f64() / o.io_latency.as_secs_f64()
        ),
    ]);
    row(&[
        "sub-block".into(),
        format!("{}", o.io_latency),
        format!("{}", o.restructure),
        "1.00x".into(),
    ]);
    report.merge_prefixed("b.baseline.", &base.run_report());
    report.merge_prefixed("b.oracle.", &oracle.run_report());
    collect_trace(traces, "b.baseline", &base);
    collect_trace(traces, "b.oracle", &oracle);
}

fn main() {
    let (report_path, rest) = take_report_path(std::env::args().skip(1).collect());
    let (trace_path, rest) = take_trace_path(rest);
    let (metrics_path, rest) = take_metrics_path(rest);
    let (dashboard_path, _rest) = take_dashboard_path(rest);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let clock = WallClock::start();
    let mut report = RunReport::new();
    let mut traces = Vec::new();
    report.set_meta("bench", "fig2");
    println!("# Fig. 2 — blocked matrix multiplication, row-store vs sub-block\n");
    fig_a(trace_path.is_some(), &mut traces);
    fig_b(obs, &mut report, &mut traces);
    // Panel (b) issues 2 × (create + setup write) + 2 tile reads.
    clock.print_rate(6);
    if let Some(path) = report_path {
        write_report(&path, &report).expect("write report");
        eprintln!("run report written to {}", path.display());
    }
    if let Some(path) = trace_path {
        write_trace(&path, &traces).expect("write trace");
        eprintln!("chrome trace written to {}", path.display());
    }
    write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &report).expect("telemetry");
}
