//! Regenerates the **§7.3 overhead table**: the worst-case latency NDS adds
//! on single-page requests with no dimensional transformation, and the
//! space the STL's lookup structures occupy.
//!
//! Paper reference points: +41 µs (software NDS) and +17 µs (hardware NDS)
//! over the baseline; lookup structures ≤0.1% of storage capacity; both
//! comparable to a NAND page read (30–100 µs).
//!
//! Usage: `cargo run --release -p nds-bench --bin overhead`

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{header, row};
use nds_core::{ElementType, Shape};
use nds_system::{BaselineSystem, HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig};

fn main() {
    println!("# §7.3 — NDS overhead (worst case: single-page reads, no transformation)\n");
    let config = SystemConfig::paper_scale();
    let page = config.flash.geometry.page_size as u64;
    // A one-page-wide dataset: each row is exactly one page, and a one-row
    // read is a single-unit access with no assembly.
    let rows = 512u64;
    let width = page / 8; // f64 elements per page
    let shape = Shape::new([width, rows]);
    let data: Vec<u8> = (0..width * rows * 8).map(|i| (i % 251) as u8).collect();

    let mut base = BaselineSystem::new(config.clone());
    let mut sw = SoftwareNds::new(config.clone());
    let mut hw = HardwareNds::new(config.clone());
    let mut latencies = Vec::new();
    for sys in [
        &mut base as &mut dyn StorageFrontEnd,
        &mut sw as &mut dyn StorageFrontEnd,
        &mut hw as &mut dyn StorageFrontEnd,
    ] {
        let id = sys
            .create_dataset(shape.clone(), ElementType::F64)
            .expect("create");
        sys.write(id, &shape, &[0, 0], &[width, rows], &data)
            .expect("write");
        // Average single-page read latency over a few rows.
        let mut total_ns = 0u64;
        let samples = 16;
        for r in 0..samples {
            let out = sys
                .read(id, &shape, &[0, r * 7 % rows], &[width, 1])
                .expect("read");
            total_ns += out.latency().as_nanos();
        }
        latencies.push((sys.name(), total_ns / samples));
    }

    header(&[
        "system",
        "single-page latency",
        "added vs baseline",
        "paper",
    ]);
    let baseline_ns = latencies[0].1;
    for (name, ns) in &latencies {
        let added = ns.saturating_sub(baseline_ns);
        let paper = match *name {
            "software-nds" => "+41 us",
            "hardware-nds" => "+17 us",
            _ => "—",
        };
        row(&[
            (*name).to_owned(),
            format!("{:.1} us", *ns as f64 / 1000.0),
            format!("+{:.1} us", added as f64 / 1000.0),
            paper.to_owned(),
        ]);
    }

    // Space overhead: translation structures vs stored payload, on a
    // fully-written large space.
    println!("\n## STL lookup-structure space overhead (paper: ≤0.1% of storage)\n");
    let mut sw = SoftwareNds::new(config);
    let n = 4096u64;
    let big = Shape::new([n, n]);
    let payload: Vec<u8> = vec![0xA5; (n * n * 8) as usize];
    let id = sw
        .create_dataset(big.clone(), ElementType::F64)
        .expect("create");
    sw.write(id, &big, &[0, 0], &[n, n], &payload)
        .expect("write");
    let meta = sw.stl().translation_bytes();
    let stored = n * n * 8;
    header(&["stored payload", "translation metadata", "overhead"]);
    row(&[
        format!("{} MiB", stored / 1024 / 1024),
        format!("{:.1} KiB", meta as f64 / 1024.0),
        format!("{:.3}%", meta as f64 / stored as f64 * 100.0),
    ]);
}
