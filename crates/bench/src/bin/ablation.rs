//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Allocation policy** — the §4.2 channel-spreading rules vs. naive
//!    lane packing. The paper's whole \[P3\] argument rests on complete
//!    building blocks spanning every channel; packing forfeits that.
//! 2. **Building-block multiplier** — §4.1 allows any power-of-two multiple
//!    of the minimum block; the sweep shows how block size trades assembly
//!    granularity against coverage.
//! 3. **Faster NVM** — §7.2(4): "with faster NVM technologies that raise
//!    the internal-to-external bandwidth ratio, the advantage of hardware
//!    NDS will become more significant."
//!
//! Usage: `cargo run --release -p nds-bench --bin ablation [-- --report <path>]`
//!
//! With `--report <path>` each ablation point runs fully instrumented and
//! the merged run-report JSON is written to `path`.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{
    collect_trace, header, obs_for_run, row, take_dashboard_path, take_metrics_path,
    take_report_path, take_trace_path, write_report, write_telemetry, write_trace, WallClock,
};
use nds_core::{AllocationPolicy, ElementType, Shape};
use nds_flash::FlashTiming;
use nds_sim::{ObsConfig, RunReport, TraceExport};
use nds_system::{HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig};

const N: u64 = 4096;

fn tile_bandwidth(sys: &mut dyn StorageFrontEnd, side: u64) -> f64 {
    let shape = Shape::new([N, N]);
    let id = {
        let id = sys
            .create_dataset(shape.clone(), ElementType::F64)
            .expect("create");
        let bytes: Vec<u8> = (0..N * N * 8).map(|i| (i % 251) as u8).collect();
        sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
            .expect("write");
        id
    };
    sys.read(id, &shape, &[1, 1], &[side, side])
        .expect("tile read")
        .effective_bandwidth()
        .as_mib_per_sec()
}

fn allocation_policy_ablation(
    obs: ObsConfig,
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
) {
    println!("## 1. Allocation policy (§4.2) — 1024² f64 tile fetch\n");
    header(&["policy", "hardware NDS MiB/s", "notes"]);
    for (policy, note) in [
        (AllocationPolicy::Paper, "blocks span all channels"),
        (
            AllocationPolicy::PackedLinear,
            "blocks confined to few lanes",
        ),
    ] {
        let mut config = SystemConfig::paper_scale().with_observability(obs);
        config.stl.allocation_policy = policy;
        let mut sys = HardwareNds::new(config);
        let bw = tile_bandwidth(&mut sys, 1024);
        report.merge_prefixed(&format!("alloc.{policy:?}."), &sys.run_report());
        collect_trace(traces, &format!("alloc.{policy:?}"), &sys);
        row(&[format!("{policy:?}"), format!("{bw:8.0}"), note.to_owned()]);
    }
    println!();
}

fn multiplier_ablation(
    obs: ObsConfig,
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
) {
    println!("## 2. Building-block multiplier (§4.1) — 1024² f64 tile fetch\n");
    header(&["multiplier", "block", "hardware NDS MiB/s"]);
    for multiplier in [1u64, 2, 4, 8] {
        let mut config = SystemConfig::paper_scale().with_observability(obs);
        config.stl.block_multiplier = multiplier;
        let mut sys = HardwareNds::new(config);
        let bw = tile_bandwidth(&mut sys, 1024);
        report.merge_prefixed(&format!("multiplier.{multiplier}x."), &sys.run_report());
        collect_trace(traces, &format!("multiplier.{multiplier}x"), &sys);
        // Block side for f64 at this multiplier: √(128 KiB·m / 8), pow2-ceil.
        let elems = 32u64 * 4096 * multiplier / 8;
        let side = 1u64 << (64 - (elems - 1).leading_zeros()).div_ceil(2);
        row(&[
            format!("{multiplier}x"),
            format!("{side}x{side} f64"),
            format!("{bw:8.0}"),
        ]);
    }
    println!();
}

fn write_bandwidth(sys: &mut dyn StorageFrontEnd) -> f64 {
    let n = 2048u64;
    let shape = Shape::new([n, n]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F64)
        .expect("create");
    let bytes: Vec<u8> = (0..n * n * 8).map(|i| (i % 251) as u8).collect();
    sys.write(id, &shape, &[0, 0], &[n, n], &bytes)
        .expect("write")
        .effective_bandwidth()
        .as_mib_per_sec()
}

fn fast_nvm_ablation(
    obs: ObsConfig,
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
) {
    println!("## 3. Faster NVM (§7.2) — hardware-over-software advantage on writes\n");
    println!("(the paper: \"with faster NVM technologies that raise the internal-to-external");
    println!(" bandwidth ratio, the advantage of hardware NDS will become more significant\")\n");
    header(&[
        "medium",
        "software NDS MiB/s",
        "hardware NDS MiB/s",
        "hw / sw",
    ]);
    for (name, key, timing) in [
        ("TLC NAND", "tlc", FlashTiming::tlc_nand()),
        ("fast NVM (PCM-class)", "fast", FlashTiming::fast_nvm()),
    ] {
        let mut config = SystemConfig::paper_scale().with_observability(obs);
        config.flash.timing = timing;
        let mut sw = SoftwareNds::new(config.clone());
        let sw_bw = write_bandwidth(&mut sw);
        let mut hw = HardwareNds::new(config);
        let hw_bw = write_bandwidth(&mut hw);
        report.merge_prefixed(&format!("nvm.{key}.software-nds."), &sw.run_report());
        report.merge_prefixed(&format!("nvm.{key}.hardware-nds."), &hw.run_report());
        collect_trace(traces, &format!("nvm.{key}.software-nds"), &sw);
        collect_trace(traces, &format!("nvm.{key}.hardware-nds"), &hw);
        row(&[
            name.to_owned(),
            format!("{sw_bw:8.0}"),
            format!("{hw_bw:8.0}"),
            format!("{:.2}x", hw_bw / sw_bw),
        ]);
    }
}

fn transfer_chunk_ablation(
    obs: ObsConfig,
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
) {
    println!("\n## 4. NDS transfer chunk (§4.4) — when assembled data ships to the host\n");
    println!("(NDS starts moving assembled data once a segment reaches the optimal");
    println!(" data-exchange volume; §2.1 puts NVMe saturation at ~2 MB)\n");
    header(&["chunk", "hardware NDS MiB/s (4096x2048 fetch)"]);
    for chunk in [
        64u64 * 1024,
        256 * 1024,
        1024 * 1024,
        2 * 1024 * 1024,
        8 * 1024 * 1024,
    ] {
        let mut config = SystemConfig::paper_scale().with_observability(obs);
        config.nds_transfer_chunk = chunk;
        let mut sys = HardwareNds::new(config);
        let shape = Shape::new([N, N]);
        let id = sys
            .create_dataset(shape.clone(), ElementType::F64)
            .expect("create");
        let bytes: Vec<u8> = (0..N * N * 8).map(|i| (i % 251) as u8).collect();
        sys.write(id, &shape, &[0, 0], &[N, N], &bytes)
            .expect("write");
        let out = sys
            .read(id, &shape, &[0, 1], &[N, 2048])
            .expect("panel fetch");
        report.merge_prefixed(&format!("chunk.{}kib.", chunk / 1024), &sys.run_report());
        collect_trace(traces, &format!("chunk.{}kib", chunk / 1024), &sys);
        row(&[
            format!("{} KiB", chunk / 1024),
            format!("{:8.0}", out.effective_bandwidth().as_mib_per_sec()),
        ]);
    }
}

fn main() {
    let (report_path, rest) = take_report_path(std::env::args().skip(1).collect());
    let (trace_path, rest) = take_trace_path(rest);
    let (metrics_path, rest) = take_metrics_path(rest);
    let (dashboard_path, _rest) = take_dashboard_path(rest);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let clock = WallClock::start();
    let mut report = RunReport::new();
    let mut traces = Vec::new();
    report.set_meta("bench", "ablation");
    println!("# Ablations of NDS design choices\n");
    allocation_policy_ablation(obs, &mut report, &mut traces);
    multiplier_ablation(obs, &mut report, &mut traces);
    fast_nvm_ablation(obs, &mut report, &mut traces);
    transfer_chunk_ablation(obs, &mut report, &mut traces);
    // 2 + 4 tile sweeps × (create+write+read), 2 NVM media × 2 systems ×
    // (create+write), 5 chunk points × (create+write+read).
    clock.print_rate(6 * 3 + 4 * 2 + 5 * 3);
    if let Some(path) = report_path {
        write_report(&path, &report).expect("write report");
        eprintln!("run report written to {}", path.display());
    }
    if let Some(path) = trace_path {
        write_trace(&path, &traces).expect("write trace");
        eprintln!("chrome trace written to {}", path.display());
    }
    write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &report).expect("telemetry");
}
