//! Regenerates **Fig. 3** of the paper: effective data-processing rates and
//! I/O bandwidths of the system components as a function of matrix size.
//!
//! Paper reference points: CUDA cores peak at 2048×2048, Tensor Cores at
//! 512×512 (an order of magnitude above the CUDA cores); the 32-channel
//! datacenter SSD reaches its full internal bandwidth around 512×512
//! fetches (4-byte elements, sequential), the 8-channel consumer SSD
//! saturates its (lower) external bandwidth at similar sizes, and NVMeoF
//! saturates once transfers exceed ~2 MB.
//!
//! Usage: `cargo run --release -p nds-bench --bin fig3`

use nds_accel::ComputeEngine;
use nds_bench::{header, row};
use nds_flash::{FlashConfig, FlashDevice, PageAddr};
use nds_interconnect::{Link, LinkConfig};
use nds_sim::SimTime;

/// Sequential internal read bandwidth of `config` for a transfer of `bytes`:
/// pages striped round-robin over channels, completion = device drain.
fn internal_bandwidth(config: &FlashConfig, bytes: u64) -> f64 {
    let mut device = FlashDevice::new(config.clone());
    let g = *device.geometry();
    let pages = (bytes.div_ceil(g.page_size as u64) as usize).min(g.total_pages());
    let addrs: Vec<PageAddr> = (0..pages)
        .map(|i| PageAddr {
            channel: i % g.channels,
            bank: (i / g.channels) % g.banks_per_channel,
            block: (i / (g.channels * g.banks_per_channel)) % g.blocks_per_bank,
            page: i / (g.channels * g.banks_per_channel * g.blocks_per_bank),
        })
        .collect();
    let done = device.schedule_reads(&addrs, SimTime::ZERO);
    // Rate over the bytes actually scheduled (requests beyond device
    // capacity wrap in reality; the steady-state rate is the same).
    let scheduled = pages as u64 * g.page_size as u64;
    scheduled as f64 / done.saturating_since(SimTime::ZERO).as_secs_f64() / (1024.0 * 1024.0)
}

/// External bandwidth: the device stream capped by the interconnect.
fn external_bandwidth(config: &FlashConfig, link_cfg: LinkConfig, bytes: u64) -> f64 {
    let internal = internal_bandwidth(config, bytes);
    let link = Link::new(link_cfg)
        .effective_bandwidth(bytes)
        .as_mib_per_sec();
    internal.min(link)
}

fn main() {
    println!("# Fig. 3 — effective processing rates / bandwidths vs matrix size");
    println!("# paper: CUDA optimum 2048², TC optimum 512² (≫ CUDA); NVMeoF saturates ~2 MB\n");
    let cuda = ComputeEngine::cuda_cores();
    let tc = ComputeEngine::tensor_cores();
    let nvmeof = Link::new(LinkConfig::nvmeof_40g());
    let datacenter = FlashConfig::datacenter_32ch();
    let consumer = FlashConfig::consumer_8ch();

    header(&[
        "matrix",
        "CUDA cores MiB/s",
        "Tensor cores MiB/s",
        "NVMeoF MiB/s",
        "32-ch SSD internal MiB/s",
        "8-ch SSD external MiB/s",
    ]);
    let mut n = 32u64;
    while n <= 16384 {
        let bytes = n * n * 4; // 4-byte elements, as in the paper's sweep
        row(&[
            format!("{n}x{n}"),
            format!("{:9.1}", cuda.rate(n).as_mib_per_sec()),
            format!("{:9.1}", tc.rate(n).as_mib_per_sec()),
            format!("{:9.1}", nvmeof.effective_bandwidth(bytes).as_mib_per_sec()),
            format!("{:9.1}", internal_bandwidth(&datacenter, bytes)),
            format!(
                "{:9.1}",
                external_bandwidth(&consumer, LinkConfig::nvmeof_40g(), bytes)
            ),
        ]);
        n *= 2;
    }
    println!(
        "\n(peaks: CUDA at {}, TC at {})",
        cuda.optimal_tile(),
        tc.optimal_tile()
    );
}
