//! Regenerates **Fig. 9** of the paper: the microbenchmarks of §7.1 on a
//! 2-D f64 matrix (the paper uses 32,768²; we default to 8,192² — ¼ linear
//! scale — with the same 256×256 f64 building blocks).
//!
//! * **(a)** row fetches: baseline ≈ hardware NDS; software NDS ~12% lower
//!   (4.3 vs 3.8 GB/s in the paper).
//! * **(b)** column fetches: row-store baseline collapses (≤0.6 GB/s);
//!   NDS performs like a column-store baseline.
//! * **(c)** submatrix fetches: NDS far outperforms the baseline.
//! * **(d)** whole-matrix writes: baseline ~281 MB/s; software NDS −30%;
//!   hardware NDS −17%.
//!
//! Usage: `cargo run --release -p nds-bench --bin fig9 [-- a|b|c|d] [--report <path>]`
//!
//! With `--report <path>` the systems run fully instrumented (event
//! journals, latency histograms, busy timelines) and the merged
//! [`RunReport`](nds_sim::RunReport) JSON is written to `path` —
//! byte-identical across repeated runs.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{
    collect_trace, header, obs_for_run, row, setup_matrix_f64, take_dashboard_path,
    take_metrics_path, take_report_path, take_trace_path, write_report, write_telemetry,
    write_trace, WallClock,
};
use nds_core::{ElementType, Shape};
use nds_sim::{ObsConfig, RunReport, TraceExport};
use nds_system::{BaselineSystem, HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig};

const N: u64 = 8192;

fn mib(v: f64) -> String {
    format!("{v:8.0}")
}

fn fresh_systems(obs: ObsConfig) -> (BaselineSystem, SoftwareNds, HardwareNds) {
    let config = SystemConfig::paper_scale().with_observability(obs); // 4× blocks ⇒ 256×256 f64
    (
        BaselineSystem::new(config.clone()),
        SoftwareNds::new(config.clone()),
        HardwareNds::new(config),
    )
}

/// Folds the three systems' run artifacts into `report` under
/// `<panel>.<arch>.`-prefixed names, and their causal traces (when tracing
/// is on) into `traces` under matching labels.
fn absorb_systems(
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
    panel: &str,
    systems: (&BaselineSystem, &SoftwareNds, &HardwareNds),
) {
    let (base, sw, hw) = systems;
    report.merge_prefixed(&format!("{panel}.baseline."), &base.run_report());
    report.merge_prefixed(&format!("{panel}.software-nds."), &sw.run_report());
    report.merge_prefixed(&format!("{panel}.hardware-nds."), &hw.run_report());
    collect_trace(traces, &format!("{panel}.baseline"), base);
    collect_trace(traces, &format!("{panel}.software-nds"), sw);
    collect_trace(traces, &format!("{panel}.hardware-nds"), hw);
}

/// Runs one read sweep over all three systems and prints MiB/s per point.
/// Returns the number of front-end commands issued.
fn read_sweep(
    label: &str,
    panel: &str,
    obs: ObsConfig,
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
    requests: &[(String, Vec<u64>, Vec<u64>)],
) -> u64 {
    println!("\n## ({label})\n");
    let shape = Shape::new([N, N]);
    let (mut base, mut sw, mut hw) = fresh_systems(obs);
    let base_id = setup_matrix_f64(&mut base, N).expect("baseline setup");
    let sw_id = setup_matrix_f64(&mut sw, N).expect("software setup");
    let hw_id = setup_matrix_f64(&mut hw, N).expect("hardware setup");
    header(&[
        "request",
        "baseline MiB/s",
        "software NDS MiB/s",
        "hardware NDS MiB/s",
    ]);
    for (name, coord, sub) in requests {
        let b = base
            .read(base_id, &shape, coord, sub)
            .expect("baseline read");
        let s = sw.read(sw_id, &shape, coord, sub).expect("software read");
        let h = hw.read(hw_id, &shape, coord, sub).expect("hardware read");
        row(&[
            name.clone(),
            mib(b.effective_bandwidth().as_mib_per_sec()),
            mib(s.effective_bandwidth().as_mib_per_sec()),
            mib(h.effective_bandwidth().as_mib_per_sec()),
        ]);
    }
    absorb_systems(report, traces, panel, (&base, &sw, &hw));
    // 3 × (create + setup write) + one read per system per request.
    6 + 3 * requests.len() as u64
}

fn fig_a(obs: ObsConfig, report: &mut RunReport, traces: &mut Vec<(String, TraceExport)>) -> u64 {
    // Row panels of 512..4096 rows (full width), as in Fig. 9(a).
    let requests = [512u64, 1024, 2048, 4096]
        .iter()
        .map(|&rows| (format!("{rows} rows"), vec![0, 0], vec![N, rows]))
        .collect::<Vec<_>>();
    read_sweep(
        "a — row fetches; paper: baseline ≈ hardware, software ~12% lower",
        "a",
        obs,
        report,
        traces,
        &requests,
    )
}

fn fig_b(obs: ObsConfig, report: &mut RunReport, traces: &mut Vec<(String, TraceExport)>) -> u64 {
    // Column panels of 512..4096 columns (full height).
    println!("\n## (b — column fetches; paper: row-store baseline ≤600 MB/s-class, NDS ≈ col-store baseline)\n");
    let shape = Shape::new([N, N]);
    let (mut base, mut sw, mut hw) = fresh_systems(obs);
    let base_id = setup_matrix_f64(&mut base, N).expect("baseline setup");
    let sw_id = setup_matrix_f64(&mut sw, N).expect("software setup");
    let hw_id = setup_matrix_f64(&mut hw, N).expect("hardware setup");
    // The col-store baseline stores the transpose, so a column fetch is a
    // contiguous row fetch of the transposed dataset.
    let mut col_store = BaselineSystem::new(SystemConfig::paper_scale().with_observability(obs));
    let col_id = setup_matrix_f64(&mut col_store, N).expect("col-store setup");
    header(&[
        "request",
        "baseline(row-store)",
        "baseline(col-store)",
        "software NDS",
        "hardware NDS",
    ]);
    for cols in [512u64, 1024, 2048, 4096] {
        let b = base
            .read(base_id, &shape, &[0, 0], &[cols, N])
            .expect("row-store columns");
        let c = col_store
            .read(col_id, &shape, &[0, 0], &[N, cols])
            .expect("col-store columns (transposed layout)");
        let s = sw
            .read(sw_id, &shape, &[0, 0], &[cols, N])
            .expect("software");
        let h = hw
            .read(hw_id, &shape, &[0, 0], &[cols, N])
            .expect("hardware");
        row(&[
            format!("{cols} cols"),
            mib(b.effective_bandwidth().as_mib_per_sec()),
            mib(c.effective_bandwidth().as_mib_per_sec()),
            mib(s.effective_bandwidth().as_mib_per_sec()),
            mib(h.effective_bandwidth().as_mib_per_sec()),
        ]);
    }
    absorb_systems(report, traces, "b", (&base, &sw, &hw));
    report.merge_prefixed("b.baseline-col-store.", &col_store.run_report());
    collect_trace(traces, "b.baseline-col-store", &col_store);
    // 4 × (create + setup write) + 4 reads per system per point.
    8 + 4 * 4
}

fn fig_c(obs: ObsConfig, report: &mut RunReport, traces: &mut Vec<(String, TraceExport)>) -> u64 {
    // Square submatrices 512²..4096² at an unaligned-ish tile position.
    let requests = [512u64, 1024, 2048, 4096]
        .iter()
        .map(|&side| (format!("{side}x{side}"), vec![1, 1], vec![side, side]))
        .collect::<Vec<_>>();
    read_sweep(
        "c — submatrix fetches; paper: NDS far above baseline",
        "c",
        obs,
        report,
        traces,
        &requests,
    )
}

fn fig_d(obs: ObsConfig, report: &mut RunReport, traces: &mut Vec<(String, TraceExport)>) -> u64 {
    println!(
        "\n## (d — whole-matrix write; paper: baseline ~281 MB/s, software −30%, hardware −17%)\n"
    );
    const WN: u64 = 4096;
    let shape = Shape::new([WN, WN]);
    let bytes: Vec<u8> = (0..WN * WN * 8).map(|i| (i % 251) as u8).collect();
    header(&["system", "write MiB/s", "vs baseline"]);
    let mut results = Vec::new();
    let (mut base, mut sw, mut hw) = fresh_systems(obs);
    for sys in [
        &mut base as &mut dyn StorageFrontEnd,
        &mut sw as &mut dyn StorageFrontEnd,
        &mut hw as &mut dyn StorageFrontEnd,
    ] {
        let id = sys
            .create_dataset(shape.clone(), ElementType::F64)
            .expect("create");
        let out = sys
            .write(id, &shape, &[0, 0], &[WN, WN], &bytes)
            .expect("write");
        results.push((sys.name(), out.effective_bandwidth().as_mib_per_sec()));
    }
    let baseline_bw = results[0].1;
    for (name, bw) in results {
        row(&[
            name.to_owned(),
            mib(bw),
            format!("{:+.0}%", (bw / baseline_bw - 1.0) * 100.0),
        ]);
    }
    absorb_systems(report, traces, "d", (&base, &sw, &hw));
    // 3 creates + 3 whole-matrix writes.
    6
}

fn main() {
    let (report_path, rest) = take_report_path(std::env::args().skip(1).collect());
    let (trace_path, rest) = take_trace_path(rest);
    let (metrics_path, rest) = take_metrics_path(rest);
    let (dashboard_path, rest) = take_dashboard_path(rest);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let which = rest.first().map(String::as_str);
    let clock = WallClock::start();
    let mut report = RunReport::new();
    let mut traces = Vec::new();
    report.set_meta("bench", "fig9");
    println!("# Fig. 9 — §7.1 microbenchmarks ({N}×{N} f64, 256×256 f64 building blocks)");
    let commands = match which {
        Some("a") => fig_a(obs, &mut report, &mut traces),
        Some("b") => fig_b(obs, &mut report, &mut traces),
        Some("c") => fig_c(obs, &mut report, &mut traces),
        Some("d") => fig_d(obs, &mut report, &mut traces),
        _ => {
            fig_a(obs, &mut report, &mut traces)
                + fig_b(obs, &mut report, &mut traces)
                + fig_c(obs, &mut report, &mut traces)
                + fig_d(obs, &mut report, &mut traces)
        }
    };
    clock.print_rate(commands);
    if let Some(path) = report_path {
        write_report(&path, &report).expect("write report");
        eprintln!("run report written to {}", path.display());
    }
    if let Some(path) = trace_path {
        write_trace(&path, &traces).expect("write trace");
        eprintln!("chrome trace written to {}", path.display());
    }
    write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &report).expect("telemetry");
}
