//! Garbage-collection and wear behaviour under sustained overwrites — the
//! §4.2 claim that "garbage collection in NDS is similar to that of a
//! conventional NVM storage device" with even wear.
//!
//! The harness hammers one dataset with whole-object overwrites through the
//! baseline FTL and through the STL (software NDS backend), then reports GC
//! activity and the erase-count distribution across blocks. The shape to
//! observe: both layers reclaim space indefinitely, and neither concentrates
//! wear pathologically (the STL's random block placement spreads erases).
//!
//! Usage: `cargo run --release -p nds-bench --bin wear`

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{header, row};
use nds_core::{ElementType, Shape};
use nds_flash::{BlockAddr, FlashDevice};
use nds_system::{BaselineSystem, SoftwareNds, StorageFrontEnd, SystemConfig};

const ROUNDS: u64 = 24;

/// Erase-count distribution over all blocks of a device.
fn wear_profile(device: &FlashDevice) -> (u64, u64, f64) {
    let g = *device.geometry();
    let mut counts = Vec::new();
    for channel in 0..g.channels {
        for bank in 0..g.banks_per_channel {
            for block in 0..g.blocks_per_bank {
                counts.push(device.erase_count(BlockAddr {
                    channel,
                    bank,
                    block,
                }));
            }
        }
    }
    let min = *counts.iter().min().expect("blocks exist");
    let max = *counts.iter().max().expect("blocks exist");
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    (min, max, mean)
}

fn hammer(sys: &mut dyn StorageFrontEnd, n: u64) {
    let shape = Shape::new([n, n]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    for round in 0..ROUNDS {
        let fill = (round % 251) as u8;
        let data = vec![fill; (n * n * 4) as usize];
        sys.write(id, &shape, &[0, 0], &[n, n], &data)
            .expect("write");
    }
    // Verify the final contents survived all the GC underneath.
    let out = sys.read(id, &shape, &[0, 0], &[n, n]).expect("read");
    let expect = ((ROUNDS - 1) % 251) as u8;
    assert!(
        out.data.iter().all(|&b| b == expect),
        "{}: data corrupted under GC pressure",
        sys.name()
    );
}

fn main() {
    println!("# GC and wear under {ROUNDS} whole-dataset overwrites\n");
    // A dataset sized at ~55% of the device so overwrites must reclaim.
    let config = SystemConfig::paper_scale();
    let capacity = config.flash.geometry.capacity_bytes();
    let n = {
        let target = capacity * 55 / 100 / 4; // f32 elements
        let side = (target as f64).sqrt() as u64;
        side / 256 * 256 // block-aligned side
    };
    println!(
        "device: {} MiB raw; dataset: {n}x{n} f32 = {} MiB\n",
        capacity / 1024 / 1024,
        n * n * 4 / 1024 / 1024
    );

    header(&["layer", "GC runs", "pages relocated", "erase min/mean/max"]);

    let mut baseline = BaselineSystem::new(config.clone());
    hammer(&mut baseline, n);
    let stats = baseline.stats();
    let (min, max, mean) = {
        // The FTL's device is reachable through the stats only; re-derive by
        // running the same load on a bare FTL? The front-end exposes stats
        // with flash.blocks_erased, which is what we report alongside.
        (stats.get("ftl.gc_runs"), stats.get("ftl.gc_relocated"), 0.0)
    };
    let _ = (min, max, mean);
    row(&[
        "baseline FTL".into(),
        format!("{}", stats.get("ftl.gc_runs")),
        format!("{}", stats.get("ftl.gc_relocated")),
        format!("(blocks erased: {})", stats.get("flash.blocks_erased")),
    ]);

    let mut software = SoftwareNds::new(config);
    hammer(&mut software, n);
    let stats = software.stats();
    let (min, max, mean) = wear_profile(software.stl().backend().device());
    row(&[
        "NDS STL".into(),
        format!("{}", stats.get("backend.gc_runs")),
        format!("{}", stats.get("backend.gc_relocated")),
        format!("{min}/{mean:.1}/{max}"),
    ]);

    println!("\nboth layers sustained {ROUNDS} overwrites with verified data integrity");
}
