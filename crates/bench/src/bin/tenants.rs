//! Multi-tenant traffic-engine bench: N tenants (default 16) with mixed
//! open/closed arrival processes share one hardware-NDS device behind the
//! deterministic WFQ admission stage, each running a seeded Fig. 9-style
//! command mix over its own private dataset.
//!
//! Prints one row per tenant — configured weight share vs achieved
//! throughput share, commands, depth high-water mark — plus the aggregate
//! makespan, throughput, and Jain fairness over per-tenant bytes.
//!
//! Usage: `cargo run --release -p nds-bench --bin tenants
//!         [-- [--tenants N] [--ops N] [--seed S] [--report <path>] [--trace <path>]]`
//!
//! With `--report` the engine report (always-on accounting) is merged
//! with the front-end's instrumented report and written as deterministic
//! JSON; with `--trace` the causal trace gains per-tenant Perfetto lanes.
//! Both artifacts are byte-identical across repeated runs of the same
//! seed — `scripts/check.sh` runs this binary twice and diffs.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{
    header, obs_for_run, row, take_dashboard_path, take_metrics_path, take_report_path,
    take_trace_path, write_report, write_telemetry, write_trace, WallClock,
};
use nds_system::{Arrival, HardwareNds, SystemConfig, TrafficEngine};
use nds_workloads::tenants::mixed_open_closed;

fn take_u64_flag(flag: &str, default: u64, args: Vec<String>) -> (u64, Vec<String>) {
    let prefix = format!("{flag}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut value = default;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == flag {
            value = it.next().and_then(|v| v.parse().ok()).unwrap_or(default);
        } else if let Some(v) = a.strip_prefix(&prefix) {
            value = v.parse().unwrap_or(default);
        } else {
            rest.push(a);
        }
    }
    (value, rest)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (report_path, args) = take_report_path(args);
    let (trace_path, args) = take_trace_path(args);
    let (metrics_path, args) = take_metrics_path(args);
    let (dashboard_path, args) = take_dashboard_path(args);
    let (tenants, args) = take_u64_flag("--tenants", 16, args);
    let (ops, args) = take_u64_flag("--ops", 32, args);
    let (seed, _args) = take_u64_flag("--seed", 42, args);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let clock = WallClock::start();

    let set = mixed_open_closed(seed, tenants as u32, ops);
    let sys = HardwareNds::new(SystemConfig::small_test().with_observability(obs));
    let mut engine = TrafficEngine::new(sys, &set).expect("tenant setup");
    engine.configure_metrics(&obs);
    engine.run().expect("engine run");

    println!("# tenants — {tenants} tenants (mixed open/closed), {ops} ops each, seed {seed}\n");
    let report = engine.report();
    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    header(&[
        "tenant",
        "arrival",
        "weight share",
        "achieved share",
        "ops",
        "bytes",
        "cmds",
        "depth max",
    ]);
    let mut per_tenant_bytes = Vec::new();
    let mut total_commands = 0u64;
    for (t, spec) in set.tenants.iter().enumerate() {
        let scope = format!("tenant[{t}]");
        let arrival = match spec.arrival {
            Arrival::Closed { outstanding } => format!("closed({outstanding})"),
            Arrival::Open { mean_gap } => format!("open({} ns)", mean_gap.as_nanos()),
        };
        per_tenant_bytes.push(counter(&format!("{scope}.bytes")));
        total_commands += counter(&format!("{scope}.commands"));
        row(&[
            t.to_string(),
            arrival,
            format!("{}m", counter(&format!("{scope}.weight_share_milli"))),
            format!("{}m", counter(&format!("{scope}.share_milli"))),
            counter(&format!("{scope}.ops")).to_string(),
            counter(&format!("{scope}.bytes")).to_string(),
            counter(&format!("{scope}.commands")).to_string(),
            counter(&format!("{scope}.max_outstanding")).to_string(),
        ]);
    }
    let makespan_ns = engine.makespan().as_nanos();
    let total_bytes = counter("engine.bytes");
    let mib_s = if makespan_ns == 0 {
        0.0
    } else {
        (total_bytes as f64 / (1 << 20) as f64) / (makespan_ns as f64 / 1e9)
    };
    println!(
        "\nmakespan {makespan_ns} ns, {total_bytes} bytes moved, {mib_s:.1} MiB/s aggregate, \
         tenant jain {:.3}",
        nds_prof::jain_milli(&per_tenant_bytes) as f64 / 1000.0
    );
    clock.print_rate(total_commands);

    if report_path.is_some() || metrics_path.is_some() || dashboard_path.is_some() {
        let full = engine.full_report();
        if let Some(path) = &report_path {
            write_report(path, &full).expect("write report");
            println!("report written to {}", path.display());
        }
        write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &full).expect("telemetry");
    }
    if let Some(path) = &trace_path {
        let export = engine.trace_export().expect("tracing was on");
        write_trace(path, &[("tenants.hardware-nds".to_string(), export)]).expect("write trace");
        println!("trace written to {}", path.display());
    }
}
