//! Regenerates **Fig. 10** of the paper: (a) end-to-end speedup of software
//! NDS, the software oracle, and hardware NDS over the baseline SSD for all
//! ten Table 1 workloads, and (b) the reduction of compute-kernel idle time.
//!
//! Paper reference points: software NDS 5.07×, hardware NDS 5.73× average
//! speedup; idle-time reduction 74% (software) / 76% (hardware); BFS gains
//! almost nothing from software NDS.
//!
//! Usage: `cargo run --release -p nds-bench --bin fig10 [-- --n <N> --tile <T>] [--report <path>]`
//!
//! With `--report <path>` every workload×architecture run is fully
//! instrumented and the merged run-report JSON is written to `path`.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{
    collect_trace, geomean, header, obs_for_run, row, take_dashboard_path, take_metrics_path,
    take_report_path, take_trace_path, write_report, write_telemetry, write_trace, WallClock,
};
use nds_sim::{ObsConfig, RunReport, TraceExport};
use nds_system::{
    BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, StorageFrontEnd, SystemConfig,
};
use nds_workloads::{all_workloads, Workload, WorkloadParams, WorkloadRun};

fn parse_args(args: &[String]) -> (WorkloadParams, u64) {
    let mut params = WorkloadParams::bench(0x4E44_5321);
    let mut cost_scale = 2;
    let mut i = 0;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--n" => params.n = args[i + 1].parse().expect("--n takes an integer"),
            "--tile" => params.tile = args[i + 1].parse().expect("--tile takes an integer"),
            "--iters" => params.iterations = args[i + 1].parse().expect("--iters takes an integer"),
            "--cost-scale" => {
                cost_scale = args[i + 1].parse().expect("--cost-scale takes an integer")
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    params.validate();
    (params, cost_scale)
}

fn config(cost_scale: u64, obs: ObsConfig) -> SystemConfig {
    let mut config = SystemConfig::paper_scale().with_observability(obs);
    // Workload matrices are f32; the minimum building block (256×256 f32,
    // 256 KB) matches the kernel tile at bench scale.
    config.stl.block_multiplier = 1;
    // Partially rescale fixed per-command costs toward this dataset scale's
    // smaller requests (see `with_scaled_command_costs`); the default of 2
    // is calibrated against the paper's headline numbers (EXPERIMENTS.md).
    config.with_scaled_command_costs(cost_scale)
}

fn run_all(
    workload: &dyn Workload,
    config: &SystemConfig,
    report: &mut RunReport,
    traces: &mut Vec<(String, TraceExport)>,
) -> [WorkloadRun; 4] {
    let mut baseline = BaselineSystem::new(config.clone());
    let mut oracle = OracleSystem::with_tile(config.clone(), workload.kernel_tile());
    let mut software = SoftwareNds::new(config.clone());
    let mut hardware = HardwareNds::new(config.clone());
    let runs = [
        workload.run(&mut baseline).expect("baseline"),
        workload.run(&mut oracle).expect("oracle"),
        workload.run(&mut software).expect("software"),
        workload.run(&mut hardware).expect("hardware"),
    ];
    for (sys, run) in [
        (&baseline as &dyn StorageFrontEnd, &runs[0]),
        (&oracle as &dyn StorageFrontEnd, &runs[1]),
        (&software as &dyn StorageFrontEnd, &runs[2]),
        (&hardware as &dyn StorageFrontEnd, &runs[3]),
    ] {
        let mut sub = sys.run_report();
        run.attach_to_report(&mut sub);
        report.merge_prefixed(&format!("{}.{}.", workload.name(), sys.name()), &sub);
        collect_trace(traces, &format!("{}.{}", workload.name(), sys.name()), sys);
    }
    runs
}

fn main() {
    let (report_path, rest) = take_report_path(std::env::args().skip(1).collect());
    let (trace_path, rest) = take_trace_path(rest);
    let (metrics_path, rest) = take_metrics_path(rest);
    let (dashboard_path, rest) = take_dashboard_path(rest);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let clock = WallClock::start();
    let mut commands = 0u64;
    let (params, cost_scale) = parse_args(&rest);
    let config = config(cost_scale, obs);
    println!(
        "# Fig. 10 — end-to-end workloads (n = {}, tile = {}, iterations = {}, cost scale = {})",
        params.n, params.tile, params.iterations, cost_scale
    );
    println!("# paper: software NDS 5.07x, hardware NDS 5.73x; idle reduction 74% / 76%\n");

    println!("## Table 1 — workload inventory\n");
    header(&["workload", "category", "kernel sub-dimensionality"]);
    for workload in all_workloads(params) {
        let tile = workload
            .kernel_tile()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("x");
        row(&[
            workload.name().to_owned(),
            workload.category().to_owned(),
            tile,
        ]);
    }
    println!();

    println!("## (a) Speedup of end-to-end latency over the baseline\n");
    header(&["workload", "baseline", "sw NDS ×", "oracle ×", "hw NDS ×"]);
    let mut sw_speedups = Vec::new();
    let mut oracle_speedups = Vec::new();
    let mut hw_speedups = Vec::new();
    let mut idle_rows = Vec::new();
    let mut report = RunReport::new();
    let mut traces = Vec::new();
    report.set_meta("bench", "fig10");
    for workload in all_workloads(params) {
        let [baseline, oracle, software, hardware] =
            run_all(workload.as_ref(), &config, &mut report, &mut traces);
        commands += baseline.commands + oracle.commands + software.commands + hardware.commands;
        assert_eq!(baseline.checksum, workload.reference_checksum());
        assert_eq!(software.checksum, baseline.checksum);
        assert_eq!(hardware.checksum, baseline.checksum);
        assert_eq!(oracle.checksum, baseline.checksum);
        let base = baseline.total.as_secs_f64();
        let sw = base / software.total.as_secs_f64();
        let or = base / oracle.total.as_secs_f64();
        let hw = base / hardware.total.as_secs_f64();
        sw_speedups.push(sw);
        oracle_speedups.push(or);
        hw_speedups.push(hw);
        row(&[
            workload.name().to_owned(),
            format!("{}", baseline.total),
            format!("{sw:.2}"),
            format!("{or:.2}"),
            format!("{hw:.2}"),
        ]);
        idle_rows.push((
            workload.name(),
            baseline.kernel_idle.as_secs_f64(),
            software.kernel_idle.as_secs_f64(),
            hardware.kernel_idle.as_secs_f64(),
        ));
    }
    row(&[
        "geomean".to_owned(),
        String::new(),
        format!("{:.2}", geomean(&sw_speedups)),
        format!("{:.2}", geomean(&oracle_speedups)),
        format!("{:.2}", geomean(&hw_speedups)),
    ]);

    println!("\n## (b) Reduction of idle time before compute kernels\n");
    header(&["workload", "sw NDS idle reduction", "hw NDS idle reduction"]);
    let mut sw_red = Vec::new();
    let mut hw_red = Vec::new();
    for (name, base, sw, hw) in idle_rows {
        let sw_r = if base > 0.0 { 1.0 - sw / base } else { 0.0 };
        let hw_r = if base > 0.0 { 1.0 - hw / base } else { 0.0 };
        sw_red.push(sw_r);
        hw_red.push(hw_r);
        row(&[
            name.to_owned(),
            format!("{:.0}%", sw_r * 100.0),
            format!("{:.0}%", hw_r * 100.0),
        ]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    row(&[
        "average".to_owned(),
        format!("{:.0}%", avg(&sw_red) * 100.0),
        format!("{:.0}%", avg(&hw_red) * 100.0),
    ]);
    clock.print_rate(commands);
    if let Some(path) = report_path {
        write_report(&path, &report).expect("write report");
        eprintln!("run report written to {}", path.display());
    }
    if let Some(path) = trace_path {
        write_trace(&path, &traces).expect("write trace");
        eprintln!("chrome trace written to {}", path.display());
    }
    write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &report).expect("telemetry");
}
