//! Fault-injection sweep: recovery counters and modeled-time inflation per
//! architecture across rising fault rates.
//!
//! For each rate the same request script (full write, tile overwrite, tile
//! reads, full read) runs on all four architectures with a seeded
//! deterministic fault plan, and the harness reports what the fault
//! subsystem did: faults injected vs recovered, flash and link retries,
//! blocks retired, disturb migrations, and how much modeled time the
//! recovery work added over the fault-free run. Every row must show
//! `injected == recovered` — an unrecovered fault would have surfaced as a
//! typed error and aborted the run.
//!
//! Usage: `cargo run --release -p nds-bench --bin fault_sweep [seed] [--report <path>]`
//!
//! With `--report <path>` every rate×architecture run is fully instrumented
//! (fault and retry events land in the journal next to the latency
//! histograms they inflate) and the merged run-report JSON is written to
//! `path`.

// Figure-regeneration binaries are operator tools, not simulation
// data path: panicking on a malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use nds_bench::{
    collect_trace, header, obs_for_run, row, take_dashboard_path, take_metrics_path,
    take_report_path, take_trace_path, write_report, write_telemetry, write_trace, WallClock,
};
use nds_core::{ElementType, Shape};
use nds_faults::FaultConfig;
use nds_sim::{RunReport, SimDuration, TraceExport};
use nds_system::{
    BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, StorageFrontEnd, SystemConfig,
};

const RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const N: u64 = 128;
const TILE: u64 = 32;

fn architectures(config: &SystemConfig) -> Vec<Box<dyn StorageFrontEnd>> {
    vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config.clone())),
        Box::new(OracleSystem::with_tile(config.clone(), vec![TILE, TILE])),
    ]
}

/// Runs the fixed script on one system; returns total modeled time.
fn run_script(sys: &mut dyn StorageFrontEnd) -> SimDuration {
    let shape = Shape::new([N, N]);
    let full: Vec<u8> = (0..N * N * 4).map(|i| (i % 251) as u8).collect();
    let patch = vec![0xABu8; (TILE * TILE * 4) as usize];
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let mut modeled = SimDuration::ZERO;
    let w = sys
        .write(id, &shape, &[0, 0], &[N, N], &full)
        .expect("write recovers");
    modeled += w.latency;
    let w = sys
        .write(id, &shape, &[1, 1], &[TILE, TILE], &patch)
        .expect("overwrite recovers");
    modeled += w.latency;
    for &(tx, ty) in &[(0u64, 0u64), (1, 2), (3, 3), (2, 1)] {
        let r = sys
            .read(id, &shape, &[tx, ty], &[TILE, TILE])
            .expect("tile read recovers");
        modeled += r.latency();
    }
    let r = sys
        .read(id, &shape, &[0, 0], &[N, N])
        .expect("full read recovers");
    modeled += r.latency();
    modeled
}

/// Front-end commands issued per `run_script` call: create, two writes,
/// four tile reads, one full read.
const SCRIPT_COMMANDS: u64 = 8;

fn main() {
    let (report_path, rest) = take_report_path(std::env::args().skip(1).collect());
    let (trace_path, rest) = take_trace_path(rest);
    let (metrics_path, rest) = take_metrics_path(rest);
    let (dashboard_path, rest) = take_dashboard_path(rest);
    let obs = obs_for_run(
        report_path.as_ref(),
        trace_path.as_ref(),
        metrics_path.as_ref(),
        dashboard_path.as_ref(),
    );
    let clock = WallClock::start();
    let seed: u64 = rest
        .first()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(1221);
    let mut report = RunReport::new();
    let mut traces: Vec<(String, TraceExport)> = Vec::new();
    report.set_meta("bench", "fault_sweep");
    report.set_meta("seed", seed.to_string());
    println!("# Fault sweep (seed {seed}, {N}x{N} f32, tile {TILE})\n");
    header(&[
        "rate",
        "arch",
        "injected",
        "recovered",
        "retries.fl",
        "retries.ln",
        "retired",
        "migrated",
        "time",
        "vs golden",
    ]);

    // Golden modeled times per architecture, for the inflation column.
    let golden: Vec<(String, SimDuration)> = architectures(&SystemConfig::small_test())
        .into_iter()
        .map(|mut sys| {
            let t = run_script(sys.as_mut());
            (sys.name().to_owned(), t)
        })
        .collect();

    for rate in RATES {
        let config = SystemConfig::small_test()
            .with_faults(FaultConfig::with_rate(seed, rate))
            .with_observability(obs);
        for (i, mut sys) in architectures(&config).into_iter().enumerate() {
            let modeled = run_script(sys.as_mut());
            let stats = sys.stats();
            let (injected, recovered) =
                (stats.get("faults.injected"), stats.get("faults.recovered"));
            assert_eq!(injected, recovered, "{}: unrecovered fault", sys.name());
            report.merge_prefixed(
                &format!("rate{:03}.{}.", (rate * 100.0) as u64, sys.name()),
                &sys.run_report(),
            );
            collect_trace(
                &mut traces,
                &format!("rate{:03}.{}", (rate * 100.0) as u64, sys.name()),
                sys.as_ref(),
            );
            row(&[
                format!("{rate:.2}"),
                sys.name().to_owned(),
                injected.to_string(),
                recovered.to_string(),
                stats.get("retries.flash").to_string(),
                stats.get("retries.link").to_string(),
                stats.get("blocks.retired").to_string(),
                stats.get("faults.migrated").to_string(),
                format!("{modeled}"),
                format!(
                    "{:+.1}%",
                    (modeled.as_nanos() as f64 / golden[i].1.as_nanos() as f64 - 1.0) * 100.0
                ),
            ]);
        }
    }
    println!("\nAll rows recovered every injected fault (injected == recovered).");
    clock.print_rate((4 + RATES.len() as u64 * 4) * SCRIPT_COMMANDS);
    if let Some(path) = report_path {
        write_report(&path, &report).expect("write report");
        eprintln!("run report written to {}", path.display());
    }
    if let Some(path) = trace_path {
        write_trace(&path, &traces).expect("write trace");
        eprintln!("chrome trace written to {}", path.display());
    }
    write_telemetry(metrics_path.as_ref(), dashboard_path.as_ref(), &report).expect("telemetry");
}
