//! Criterion benches over the full simulated systems: the Fig. 9 fetch
//! patterns (row / column / submatrix) on each architecture, plus the flash
//! timing engine itself. Wall-clock here measures the *simulator's* cost,
//! complementing the `fig9` harness which reports *simulated* bandwidths.

// Benches are operator tools, not simulation data path: panicking on a
// malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nds_core::{ElementType, Shape};
use nds_flash::{FlashConfig, FlashDevice, PageAddr};
use nds_sim::SimTime;
use nds_system::{BaselineSystem, HardwareNds, SoftwareNds, StorageFrontEnd, SystemConfig};
use nds_workloads::{Gemm, Workload, WorkloadParams};

const N: u64 = 1024;

fn prepared<S: StorageFrontEnd>(mut sys: S) -> (S, nds_system::DatasetId, Shape) {
    let shape = Shape::new([N, N]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let data = vec![3u8; (N * N * 4) as usize];
    sys.write(id, &shape, &[0, 0], &[N, N], &data)
        .expect("write");
    (sys, id, shape)
}

fn bench_fetch_patterns(c: &mut Criterion) {
    let config = SystemConfig::paper_scale();
    let mut group = c.benchmark_group("fetch_patterns");
    group.sample_size(20);

    let patterns: [(&str, Vec<u64>, Vec<u64>); 3] = [
        ("row_panel", vec![0, 1], vec![N, 128]),
        ("column_panel", vec![1, 0], vec![128, N]),
        ("tile", vec![1, 1], vec![256, 256]),
    ];

    let (mut base, base_id, shape) = prepared(BaselineSystem::new(config.clone()));
    for (name, coord, sub) in &patterns {
        group.bench_with_input(BenchmarkId::new("baseline", name), name, |b, _| {
            b.iter(|| base.read(base_id, &shape, coord, sub).expect("read"))
        });
    }
    let (mut sw, sw_id, shape) = prepared(SoftwareNds::new(config.clone()));
    for (name, coord, sub) in &patterns {
        group.bench_with_input(BenchmarkId::new("software", name), name, |b, _| {
            b.iter(|| sw.read(sw_id, &shape, coord, sub).expect("read"))
        });
    }
    let (mut hw, hw_id, shape) = prepared(HardwareNds::new(config));
    for (name, coord, sub) in &patterns {
        group.bench_with_input(BenchmarkId::new("hardware", name), name, |b, _| {
            b.iter(|| hw.read(hw_id, &shape, coord, sub).expect("read"))
        });
    }
    group.finish();
}

fn bench_flash_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash_timing");
    group.bench_function("schedule_1024_striped_reads", |b| {
        let mut device = FlashDevice::new(FlashConfig::datacenter_32ch());
        let g = *device.geometry();
        let addrs: Vec<PageAddr> = (0..1024)
            .map(|i| PageAddr {
                channel: i % g.channels,
                bank: (i / g.channels) % g.banks_per_channel,
                block: 0,
                page: i / (g.channels * g.banks_per_channel),
            })
            .collect();
        b.iter(|| {
            device.reset_timing();
            device.schedule_reads(&addrs, SimTime::ZERO)
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // One complete (tiny) GEMM run per architecture: measures the whole
    // simulator stack — translation, assembly, timing, pipeline, kernel.
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let gemm = Gemm::new(WorkloadParams::tiny_test(5));
    let config = SystemConfig::small_test();
    group.bench_function("gemm_tiny_baseline", |b| {
        b.iter(|| {
            let mut sys = BaselineSystem::new(config.clone());
            gemm.run(&mut sys).expect("run")
        })
    });
    group.bench_function("gemm_tiny_hardware", |b| {
        b.iter(|| {
            let mut sys = HardwareNds::new(config.clone());
            gemm.run(&mut sys).expect("run")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fetch_patterns,
    bench_flash_timing,
    bench_end_to_end
);
criterion_main!(benches);
