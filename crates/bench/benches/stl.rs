//! Criterion micro-benchmarks of the STL's hot paths: the space translator,
//! the locator B-tree, the allocation policy, and full read/write assembly.
//!
//! These are the operations whose cost §7.3 bounds (B-tree traversal and
//! coordinate arithmetic per request); measuring them directly documents
//! the constant factors behind the `overhead` harness.

// Benches are operator tools, not simulation data path: panicking on a
// malformed run is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use nds_core::{
    translator, BlockAllocator, BlockDimensionality, BlockShape, DeviceSpec, ElementType,
    LocatorTree, MemBackend, Shape, Stl, StlConfig,
};

fn spec() -> DeviceSpec {
    DeviceSpec::new(32, 8, 4096)
}

fn bench_translator(c: &mut Criterion) {
    let space = Shape::new([8192, 8192]);
    let bb = BlockShape::for_space(
        &space,
        ElementType::F32,
        spec(),
        BlockDimensionality::Auto,
        1,
    );
    let mut group = c.benchmark_group("translator");
    group.bench_function("tile_1024", |b| {
        b.iter(|| {
            translator::translate(&space, &bb, &space, &[1, 1], &[1024, 1024]).expect("translate")
        })
    });
    group.bench_function("row_panel_512", |b| {
        b.iter(|| {
            translator::translate(&space, &bb, &space, &[0, 1], &[8192, 512]).expect("translate")
        })
    });
    group.bench_function("column_panel_512", |b| {
        b.iter(|| {
            translator::translate(&space, &bb, &space, &[1, 0], &[512, 8192]).expect("translate")
        })
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("get_or_insert_3d", |b| {
        b.iter_batched(
            || LocatorTree::new(Shape::new([64, 64, 4]), 8),
            |mut tree| {
                for z in 0..4u64 {
                    for y in (0..64).step_by(7) {
                        for x in (0..64).step_by(5) {
                            tree.get_or_insert(&[x, y, z]);
                        }
                    }
                }
                tree
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree = LocatorTree::new(Shape::new([64, 64, 4]), 8);
    for z in 0..4u64 {
        for y in 0..64 {
            for x in 0..64 {
                tree.get_or_insert(&[x, y, z]);
            }
        }
    }
    group.bench_function("get_hot", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            tree.get(&[i, 63 - i, i % 4])
        })
    });
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocator/fill_block_128_units", |b| {
        b.iter_batched(
            || {
                (
                    MemBackend::new(spec(), 1 << 16),
                    BlockAllocator::new(1),
                    vec![None; 128],
                )
            },
            |(mut backend, mut alloc, mut units)| {
                for slot in 0..128 {
                    let loc = alloc
                        .allocate(&mut backend, &units, None)
                        .expect("device has space");
                    units[slot] = Some(loc);
                }
                units
            },
            BatchSize::SmallInput,
        )
    });
}

/// A pre-written 1024² f32 space; reads assemble tiles of varying shape.
fn prepared_stl(plan_cache_capacity: usize) -> (Stl<MemBackend>, nds_core::SpaceId, Shape) {
    let backend = MemBackend::new(spec(), 1 << 16);
    let mut stl = Stl::new(
        backend,
        StlConfig {
            plan_cache_capacity,
            ..StlConfig::default()
        },
    );
    let shape = Shape::new([1024, 1024]);
    let id = stl
        .create_space(shape.clone(), ElementType::F32)
        .expect("space");
    let data = vec![7u8; 1024 * 1024 * 4];
    stl.write(id, &shape, &[0, 0], &[1024, 1024], &data)
        .expect("write");
    (stl, id, shape)
}

fn bench_stl_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("stl");
    group.sample_size(20);
    // Repeated same-shape reads: the plan cache serves every iteration
    // after the first, and `read_into` reuses the caller's buffer. The
    // `_uncached` twins re-translate every request (plan cache disabled),
    // isolating the cache + reuse win on the identical access pattern.
    let (mut stl, id, shape) = prepared_stl(StlConfig::default().plan_cache_capacity);
    let (mut cold, cold_id, _) = prepared_stl(0);
    group.bench_function("read_tile_256", |b| {
        b.iter(|| stl.read(id, &shape, &[1, 1], &[256, 256]).expect("read"))
    });
    group.bench_function("read_tile_256_uncached", |b| {
        b.iter(|| {
            cold.read(cold_id, &shape, &[1, 1], &[256, 256])
                .expect("read")
        })
    });
    group.bench_function("read_into_tile_256", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            stl.read_into(id, &shape, &[1, 1], &[256, 256], &mut buf)
                .expect("read")
        })
    });
    group.bench_function("read_column_64", |b| {
        b.iter(|| stl.read(id, &shape, &[2, 0], &[64, 1024]).expect("read"))
    });
    group.bench_function("read_column_64_uncached", |b| {
        b.iter(|| {
            cold.read(cold_id, &shape, &[2, 0], &[64, 1024])
                .expect("read")
        })
    });
    group.bench_function("write_tile_256", |b| {
        let tile = vec![9u8; 256 * 256 * 4];
        b.iter(|| {
            stl.write(id, &shape, &[2, 2], &[256, 256], &tile)
                .expect("write")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_translator,
    bench_btree,
    bench_allocator,
    bench_stl_assembly
);
criterion_main!(benches);
