//! Cross-architecture differential fault harness — the proof obligation of
//! the fault subsystem.
//!
//! For every tested seed, all four architectures (baseline SSD, software
//! NDS, hardware NDS, oracle) run the same write/read script three ways:
//!
//! 1. **Golden**: fault-free (`faults: None`).
//! 2. **Zero rate**: a fault plan installed but with every rate at 0 — must
//!    be *schedule-identical* to golden (byte-identical data AND identical
//!    modeled time).
//! 3. **Rising rates**: the same seed at increasing fault rates — must stay
//!    byte-identical to golden while modeled time is monotonically
//!    non-decreasing in the rate (faults only ever *add* retries, remaps,
//!    and backoff to the timeline; they never corrupt or panic).
//!
//! Seeds come from the `NDS_FAULT_SEEDS` env var (comma-separated u64s, set
//! by `scripts/check.sh`) or a built-in default triple.

use nds::core::{ElementType, Shape};
use nds::faults::FaultConfig;
use nds::sim::SimDuration;
use nds::system::{
    BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, StorageFrontEnd, SystemConfig,
};

/// Fault rates swept per seed, ascending. `with_rate` derives the media
/// program and link rates from this base read rate.
const RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

/// Dataset side (f32 elements) and tile side for the request script.
const N: u64 = 128;
const TILE: u64 = 32;

fn seeds() -> Vec<u64> {
    match std::env::var("NDS_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("NDS_FAULT_SEEDS entry {t:?} is not a u64"))
            })
            .collect(),
        Err(_) => vec![11, 1221, 987_654_321],
    }
}

fn architectures(config: &SystemConfig) -> Vec<Box<dyn StorageFrontEnd>> {
    vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config.clone())),
        Box::new(OracleSystem::with_tile(config.clone(), vec![TILE, TILE])),
    ]
}

/// One architecture's observable outcome of the request script.
struct ArchRun {
    name: &'static str,
    /// Bytes returned by each scripted read, in script order.
    reads: Vec<Vec<u8>>,
    /// Total modeled time across every scripted write and read.
    modeled: SimDuration,
    injected: u64,
    recovered: u64,
    flash_retries: u64,
    link_retries: u64,
}

/// Runs the fixed request script — full write, one tile overwrite, four
/// tile reads plus a full-dataset read — on all four architectures.
fn run_script(config: &SystemConfig, pattern_seed: u64) -> Vec<ArchRun> {
    let shape = Shape::new([N, N]);
    let full: Vec<u8> = (0..N * N * 4)
        .map(|i| (i.wrapping_mul(pattern_seed | 1) % 251) as u8)
        .collect();
    let patch = vec![0xABu8; (TILE * TILE * 4) as usize];
    let tiles = [(0u64, 0u64), (1, 2), (3, 3), (2, 1)];

    architectures(config)
        .into_iter()
        .map(|mut sys| {
            let name = sys.name();
            let id = sys
                .create_dataset(shape.clone(), ElementType::F32)
                .expect("create_dataset never faults");
            let mut modeled = SimDuration::ZERO;
            let w = sys
                .write(id, &shape, &[0, 0], &[N, N], &full)
                .unwrap_or_else(|e| panic!("{name}: full write must recover, got {e}"));
            modeled += w.latency;
            let w = sys
                .write(id, &shape, &[1, 1], &[TILE, TILE], &patch)
                .unwrap_or_else(|e| panic!("{name}: tile overwrite must recover, got {e}"));
            modeled += w.latency;

            let mut reads = Vec::new();
            for &(tx, ty) in &tiles {
                let r = sys
                    .read(id, &shape, &[tx, ty], &[TILE, TILE])
                    .unwrap_or_else(|e| panic!("{name}: tile ({tx},{ty}) must recover, got {e}"));
                modeled += r.latency();
                reads.push(r.data);
            }
            let r = sys
                .read(id, &shape, &[0, 0], &[N, N])
                .unwrap_or_else(|e| panic!("{name}: full read must recover, got {e}"));
            modeled += r.latency();
            reads.push(r.data);

            let stats = sys.stats();
            ArchRun {
                name,
                reads,
                modeled,
                injected: stats.get("faults.injected"),
                recovered: stats.get("faults.recovered"),
                flash_retries: stats.get("retries.flash"),
                link_retries: stats.get("retries.link"),
            }
        })
        .collect()
}

#[test]
fn all_architectures_match_golden_under_faults_and_time_is_monotone() {
    for seed in seeds() {
        let golden = run_script(&SystemConfig::small_test(), seed);
        for g in &golden {
            assert_eq!(g.injected, 0, "{}: golden run must be fault-free", g.name);
        }

        let mut prev_modeled: Vec<SimDuration> = golden.iter().map(|g| g.modeled).collect();
        for &rate in &RATES {
            let config = SystemConfig::small_test().with_faults(FaultConfig::with_rate(seed, rate));
            let faulty = run_script(&config, seed);

            let mut injected_total = 0;
            for (g, f) in golden.iter().zip(&faulty) {
                assert_eq!(g.name, f.name);
                for (i, (gd, fd)) in g.reads.iter().zip(&f.reads).enumerate() {
                    assert_eq!(
                        gd, fd,
                        "{}: read #{i} diverged from golden at seed {seed} rate {rate}",
                        f.name
                    );
                }
                assert_eq!(
                    f.injected, f.recovered,
                    "{}: every injected fault must be recovered within budget \
                     (seed {seed} rate {rate})",
                    f.name
                );
                injected_total += f.injected;
                if rate == 0.0 {
                    assert_eq!(
                        f.modeled, g.modeled,
                        "{}: a zero-rate plan must be schedule-identical to golden \
                         (seed {seed})",
                        f.name
                    );
                    assert_eq!(f.injected, 0, "{}: zero rate injected faults", f.name);
                    assert_eq!(f.flash_retries + f.link_retries, 0);
                }
            }
            if rate > 0.0 {
                assert!(
                    injected_total > 0,
                    "seed {seed} rate {rate}: the sweep must actually inject faults"
                );
            }

            // Faults only add time: retries, remap programs, and backoff.
            for (f, prev) in faulty.iter().zip(&prev_modeled) {
                assert!(
                    f.modeled >= *prev,
                    "{}: modeled time {} regressed below {} when the fault rate rose \
                     to {rate} (seed {seed})",
                    f.name,
                    f.modeled,
                    prev
                );
            }
            prev_modeled = faulty.iter().map(|f| f.modeled).collect();
        }
    }
}

#[test]
fn retries_only_appear_with_faults_and_scale_with_rate() {
    let seed = seeds()[0];
    let low = run_script(
        &SystemConfig::small_test().with_faults(FaultConfig::with_rate(seed, 0.02)),
        seed,
    );
    let high = run_script(
        &SystemConfig::small_test().with_faults(FaultConfig::with_rate(seed, 0.10)),
        seed,
    );
    let sum = |runs: &[ArchRun]| {
        runs.iter()
            .map(|r| r.injected + r.flash_retries + r.link_retries)
            .sum::<u64>()
    };
    // Fault sets nest across rates (same seed), so the higher rate strictly
    // dominates the lower one in total fault work.
    assert!(
        sum(&high) > sum(&low),
        "rate 0.10 ({}) must out-inject rate 0.02 ({})",
        sum(&high),
        sum(&low)
    );
}
