//! Property tests across all four system architectures: arbitrary aligned
//! partitions of arbitrary (small) datasets return byte-identical data on
//! every architecture, equal to the in-memory reference slice.

use proptest::prelude::*;

use nds::core::{ElementType, Shape};
use nds::system::{
    BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, StorageFrontEnd, SystemConfig,
};

/// The in-memory reference: the canonical-order slice of the partition.
fn reference_slice(data: &[u8], view: &Shape, coord: &[u64], sub: &[u64], elem: usize) -> Vec<u8> {
    let region = nds::core::Region::from_request(view, coord, sub).expect("valid request");
    let mut out = vec![0u8; (region.volume() as usize) * elem];
    region.for_each_run(view, |buf, linear, len| {
        let src = (linear as usize) * elem;
        let dst = (buf as usize) * elem;
        let n = (len as usize) * elem;
        out[dst..dst + n].copy_from_slice(&data[src..src + n]);
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_architectures_serve_identical_partitions(
        w_exp in 4u32..=6,          // widths 16..=64
        h_exp in 4u32..=6,
        tiles in prop::collection::vec((0u64..4, 0u64..4), 1..6),
        seed in any::<u64>(),
    ) {
        let w = 1u64 << w_exp;
        let h = 1u64 << h_exp;
        let shape = Shape::new([w, h]);
        let sub = vec![w / 4, h / 4];
        let bytes: Vec<u8> = (0..w * h * 4)
            .map(|i| (i.wrapping_mul(seed | 1) % 251) as u8)
            .collect();

        let config = SystemConfig::small_test();
        let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
            Box::new(BaselineSystem::new(config.clone())),
            Box::new(SoftwareNds::new(config.clone())),
            Box::new(HardwareNds::new(config.clone())),
            Box::new(OracleSystem::with_tile(config, sub.clone())),
        ];
        let ids: Vec<_> = systems
            .iter_mut()
            .map(|sys| {
                let id = sys
                    .create_dataset(shape.clone(), ElementType::F32)
                    .expect("create");
                sys.write(id, &shape, &[0, 0], &[w, h], &bytes).expect("write");
                id
            })
            .collect();

        for (tx, ty) in tiles {
            let coord = vec![tx, ty];
            let expect = reference_slice(&bytes, &shape, &coord, &sub, 4);
            for (sys, id) in systems.iter_mut().zip(&ids) {
                let out = sys.read(*id, &shape, &coord, &sub).expect("read");
                prop_assert_eq!(
                    &out.data,
                    &expect,
                    "{} diverged at tile ({}, {})",
                    sys.name(),
                    tx,
                    ty
                );
                prop_assert_eq!(out.bytes, expect.len() as u64);
            }
        }
    }

    /// Writes through one architecture's partition API compose: writing
    /// random tiles then reading the full dataset equals the reference
    /// composition, on every architecture.
    #[test]
    fn tiled_writes_compose_identically(
        order in prop::collection::vec((0u64..4, 0u64..4, 0u8..=255), 1..10),
    ) {
        let n = 32u64;
        let shape = Shape::new([n, n]);
        let sub = vec![8u64, 8];
        let config = SystemConfig::small_test();
        let mut reference = vec![0u8; (n * n * 4) as usize];

        let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
            Box::new(BaselineSystem::new(config.clone())),
            Box::new(SoftwareNds::new(config.clone())),
            Box::new(HardwareNds::new(config.clone())),
            Box::new(OracleSystem::with_tile(config, sub.clone())),
        ];
        let ids: Vec<_> = systems
            .iter_mut()
            .map(|sys| sys.create_dataset(shape.clone(), ElementType::F32).expect("create"))
            .collect();

        for (tx, ty, fill) in order {
            let tile = vec![fill; 8 * 8 * 4];
            // Update the reference.
            for y in 0..8u64 {
                for x in 0..8u64 {
                    let off = (((ty * 8 + y) * n + tx * 8 + x) * 4) as usize;
                    reference[off..off + 4].copy_from_slice(&[fill; 4]);
                }
            }
            for (sys, id) in systems.iter_mut().zip(&ids) {
                sys.write(*id, &shape, &[tx, ty], &sub, &tile).expect("write");
            }
        }
        for (sys, id) in systems.iter_mut().zip(&ids) {
            let out = sys.read(*id, &shape, &[0, 0], &[n, n]).expect("read");
            prop_assert_eq!(&out.data, &reference, "{} composition", sys.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Timing invariants every architecture must uphold: occupancy never
    /// exceeds latency, restructure is non-negative (trivially), and
    /// latency is positive for non-empty reads.
    #[test]
    fn occupancy_never_exceeds_latency(
        tx in 0u64..4,
        ty in 0u64..4,
        seed in any::<u64>(),
    ) {
        let n = 64u64;
        let shape = Shape::new([n, n]);
        let bytes: Vec<u8> = (0..n * n * 4)
            .map(|i| (i.wrapping_mul(seed | 1) % 251) as u8)
            .collect();
        let config = SystemConfig::small_test();
        let mut systems: Vec<Box<dyn StorageFrontEnd>> = vec![
            Box::new(BaselineSystem::new(config.clone())),
            Box::new(SoftwareNds::new(config.clone())),
            Box::new(HardwareNds::new(config.clone())),
            Box::new(OracleSystem::with_tile(config, vec![16, 16])),
        ];
        for sys in &mut systems {
            let id = sys.create_dataset(shape.clone(), ElementType::F32).expect("create");
            sys.write(id, &shape, &[0, 0], &[n, n], &bytes).expect("write");
            let out = sys.read(id, &shape, &[tx, ty], &[16, 16]).expect("read");
            prop_assert!(
                out.io_occupancy <= out.io_latency,
                "{}: occupancy {} exceeds latency {}",
                sys.name(),
                out.io_occupancy,
                out.io_latency
            );
            prop_assert!(out.io_latency.as_nanos() > 0, "{}: zero latency", sys.name());
        }
    }
}
