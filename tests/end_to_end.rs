//! Workspace-level integration tests: every Table 1 workload runs on every
//! architecture, produces bit-identical functional results, and the timing
//! relations the paper asserts hold.

use nds::system::{BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, SystemConfig};
use nds::workloads::{all_workloads, WorkloadParams, WorkloadRun};

fn run_everywhere(
    workload: &dyn nds::workloads::Workload,
    config: &SystemConfig,
) -> [WorkloadRun; 4] {
    let mut baseline = BaselineSystem::new(config.clone());
    let mut oracle = OracleSystem::with_tile(config.clone(), workload.kernel_tile());
    let mut software = SoftwareNds::new(config.clone());
    let mut hardware = HardwareNds::new(config.clone());
    [
        workload.run(&mut baseline).expect("baseline run"),
        workload.run(&mut oracle).expect("oracle run"),
        workload.run(&mut software).expect("software run"),
        workload.run(&mut hardware).expect("hardware run"),
    ]
}

#[test]
fn all_workloads_agree_with_reference_on_all_architectures() {
    let config = SystemConfig::small_test();
    for workload in all_workloads(WorkloadParams::tiny_test(0xBEEF)) {
        let runs = run_everywhere(workload.as_ref(), &config);
        let reference = workload.reference_checksum();
        for run in &runs {
            assert_eq!(
                run.checksum,
                reference,
                "{} on {} diverged from the in-memory reference",
                workload.name(),
                run.arch
            );
        }
    }
}

#[test]
fn nds_issues_far_fewer_commands_than_baseline_on_tiled_workloads() {
    let config = SystemConfig::small_test();
    for workload in all_workloads(WorkloadParams::tiny_test(7)) {
        // Tile-shaped readers are where command reduction shows. (TC's
        // full-slice reads are contiguous even in a linear layout, so it is
        // not a command-reduction case.)
        if !matches!(workload.name(), "GEMM") {
            continue;
        }
        let runs = run_everywhere(workload.as_ref(), &config);
        let [baseline, _, _, hardware] = runs;
        assert!(
            hardware.commands * 4 <= baseline.commands,
            "{}: hardware NDS used {} commands vs baseline {}",
            workload.name(),
            hardware.commands,
            baseline.commands
        );
    }
}

#[test]
fn hardware_nds_is_fastest_on_average_and_never_loses_badly() {
    let config = SystemConfig::small_test();
    let mut base_total = 0.0;
    let mut sw_total = 0.0;
    let mut hw_total = 0.0;
    for workload in all_workloads(WorkloadParams::tiny_test(21)) {
        let runs = run_everywhere(workload.as_ref(), &config);
        let [baseline, _oracle, software, hardware] = runs;
        base_total += baseline.total.as_secs_f64();
        sw_total += software.total.as_secs_f64();
        hw_total += hardware.total.as_secs_f64();
        // Per workload, hardware NDS must never be dramatically worse than
        // the baseline. (The paper's worst case is parity on BFS; at the
        // tiny test scale BFS rows are smaller than one flash page, so
        // building-block read amplification costs hardware NDS up to ~40%
        // there — the paper-scale fig10 bench shows the parity.)
        assert!(
            hardware.total.as_secs_f64() <= baseline.total.as_secs_f64() * 1.5,
            "{}: hardware {} vs baseline {}",
            workload.name(),
            hardware.total,
            baseline.total
        );
    }
    assert!(
        hw_total < base_total,
        "aggregate: hardware {hw_total} should beat baseline {base_total}"
    );
    assert!(
        hw_total <= sw_total * 1.05,
        "aggregate: hardware {hw_total} should not trail software {sw_total}"
    );
}

#[test]
fn kernel_idle_time_shrinks_under_nds() {
    let config = SystemConfig::small_test();
    let mut base_idle = 0.0;
    let mut hw_idle = 0.0;
    for workload in all_workloads(WorkloadParams::tiny_test(5)) {
        let runs = run_everywhere(workload.as_ref(), &config);
        let [baseline, _, _, hardware] = runs;
        base_idle += baseline.kernel_idle.as_secs_f64();
        hw_idle += hardware.kernel_idle.as_secs_f64();
    }
    assert!(
        hw_idle < base_idle,
        "aggregate kernel idle: hardware {hw_idle} vs baseline {base_idle} (Fig. 10b)"
    );
}

#[test]
fn checksums_are_deterministic_across_runs() {
    let config = SystemConfig::small_test();
    let workload = &all_workloads(WorkloadParams::tiny_test(77))[2]; // GEMM
    let a = run_everywhere(workload.as_ref(), &config);
    let b = run_everywhere(workload.as_ref(), &config);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.checksum, y.checksum);
        assert_eq!(x.total, y.total, "timing must be deterministic too");
    }
}
