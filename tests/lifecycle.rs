//! Dataset lifecycle across architectures: creation, deletion
//! (`delete_space`, §5.3.1), storage reclamation, and the extended NVMe
//! command set's interface limits.

use nds::core::{ElementType, NvmBackend, Shape};
use nds::system::{
    BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, StorageFrontEnd, SystemConfig,
    SystemError,
};

fn write_one(sys: &mut dyn StorageFrontEnd) -> nds::system::DatasetId {
    let shape = Shape::new([64, 64]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let data = vec![7u8; 64 * 64 * 4];
    sys.write(id, &shape, &[0, 0], &[64, 64], &data)
        .expect("write");
    id
}

#[test]
fn delete_rejects_unknown_and_double_delete() {
    let config = SystemConfig::small_test();
    let systems: Vec<Box<dyn StorageFrontEnd>> = vec![
        Box::new(BaselineSystem::new(config.clone())),
        Box::new(SoftwareNds::new(config.clone())),
        Box::new(HardwareNds::new(config.clone())),
        Box::new(OracleSystem::with_tile(config, vec![32, 32])),
    ];
    for mut sys in systems {
        let id = write_one(sys.as_mut());
        sys.delete_dataset(id).expect("first delete");
        assert!(
            matches!(sys.delete_dataset(id), Err(SystemError::UnknownDataset(_))),
            "{}: double delete must fail",
            sys.name()
        );
        assert!(
            matches!(
                sys.read(id, &Shape::new([64, 64]), &[0, 0], &[8, 8]),
                Err(SystemError::UnknownDataset(_))
            ),
            "{}: reads after delete must fail",
            sys.name()
        );
    }
}

#[test]
fn delete_releases_nds_storage_for_reuse() {
    let config = SystemConfig::small_test();
    let mut sys = SoftwareNds::new(config);
    // Fill a noticeable fraction of the device, delete, and repeat many
    // times: without reclamation the device would run out of units.
    let shape = Shape::new([128, 128]);
    let data = vec![3u8; 128 * 128 * 4];
    for round in 0..40 {
        let id = sys
            .create_dataset(shape.clone(), ElementType::F32)
            .unwrap_or_else(|e| panic!("round {round}: create failed: {e}"));
        sys.write(id, &shape, &[0, 0], &[128, 128], &data)
            .unwrap_or_else(|e| panic!("round {round}: write failed: {e}"));
        sys.delete_dataset(id).expect("delete");
    }
    // The backend's lanes must be (close to) fully free again.
    let spec = sys.stl().backend().spec();
    let total_free: usize = (0..spec.channels)
        .flat_map(|c| (0..spec.banks_per_channel).map(move |b| (c, b)))
        .map(|(c, b)| sys.stl().backend().free_units(c, b))
        .sum();
    let capacity = (spec.channels * spec.banks_per_channel) as usize * 32 * 32;
    assert!(
        total_free * 10 >= capacity * 8,
        "expected most of the device free after deletes, got {total_free}/{capacity}"
    );
}

#[test]
fn baseline_delete_trims_pages() {
    let config = SystemConfig::small_test();
    let mut sys = BaselineSystem::new(config);
    let id = write_one(&mut sys);
    let programmed_before = sys.stats().get("flash.pages_programmed");
    assert!(programmed_before > 0);
    sys.delete_dataset(id).expect("delete");
    assert!(sys.stats().get("ftl.trimmed") > 0, "delete must TRIM pages");
}

#[test]
fn extended_command_limits_enforced() {
    // A 33-dimensional request must be rejected at the NVMe interface, per
    // §5.3.1's 32-dimension limit — even though the volume matches.
    let config = SystemConfig::small_test();
    let mut sys = HardwareNds::new(config);
    let shape = Shape::new([64, 64]);
    let id = sys
        .create_dataset(shape.clone(), ElementType::F32)
        .expect("create");
    let mut dims = vec![1u64; 33];
    dims[0] = 64;
    dims[1] = 64;
    let view = Shape::new(dims.clone());
    let err = sys
        .read(id, &view, &vec![0; 33], &dims)
        .expect_err("33 dimensions must be rejected");
    assert!(
        matches!(err, SystemError::Command(_)),
        "expected a command-limit error, got {err}"
    );
}
