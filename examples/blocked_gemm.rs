//! Out-of-core blocked matrix multiplication — the paper's motivating
//! workload (Fig. 1) — run end to end on all four storage architectures.
//!
//! The kernel code is identical everywhere; only the storage front-end
//! differs (§6's methodology). The run prints each architecture's pipeline
//! time, compute-kernel idle time, and command count, and verifies that all
//! four produce bit-identical results.
//!
//! ```bash
//! cargo run --release --example blocked_gemm
//! ```

use nds::system::{BaselineSystem, HardwareNds, OracleSystem, SoftwareNds, SystemConfig};
use nds::workloads::{Gemm, Workload, WorkloadParams};

fn main() {
    // n = 1536 keeps matrix rows wider than one flash page (the regime
    // where row-serialized tiles scatter) while the example stays quick.
    let params = WorkloadParams {
        n: 1536,
        tile: 256,
        iterations: 1,
        engine_scale: 32,
        seed: 42,
    };
    let gemm = Gemm::new(params);
    let mut config = SystemConfig::paper_scale();
    config.stl.block_multiplier = 1; // 256×256 f32 blocks = the kernel tile
    let config = config.with_scaled_command_costs(2);

    println!(
        "blocked GEMM: {0}x{0} f32, {1}x{1} tiles, on four architectures\n",
        params.n, params.tile
    );
    println!(
        "{:<14} {:>12} {:>14} {:>10} {:>10}",
        "architecture", "end-to-end", "kernel idle", "commands", "speedup"
    );

    let reference = gemm.reference_checksum();
    let mut baseline_secs = None;
    let runs = [
        gemm.run(&mut BaselineSystem::new(config.clone())),
        gemm.run(&mut OracleSystem::with_tile(
            config.clone(),
            gemm.kernel_tile(),
        )),
        gemm.run(&mut SoftwareNds::new(config.clone())),
        gemm.run(&mut HardwareNds::new(config.clone())),
    ];
    for run in runs {
        let run = run.expect("workload run");
        assert_eq!(run.checksum, reference, "functional results must agree");
        let secs = run.total.as_secs_f64();
        let base = *baseline_secs.get_or_insert(secs);
        println!(
            "{:<14} {:>12} {:>14} {:>10} {:>9.2}x",
            run.arch,
            format!("{}", run.total),
            format!("{}", run.kernel_idle),
            run.commands,
            base / secs
        );
    }
    println!("\nall four architectures computed bit-identical products");
}
