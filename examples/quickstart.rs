//! Quickstart: store a matrix once, fetch it in whatever shape a kernel
//! wants — with one command and no marshalling code.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use nds::core::{ElementType, Shape};
use nds::system::{BaselineSystem, HardwareNds, StorageFrontEnd, SystemConfig, SystemError};

fn main() -> Result<(), SystemError> {
    // The paper's 32-channel datacenter SSD behind NVMe-over-Fabrics.
    let config = SystemConfig::paper_scale();

    // --- Producer: store a 4096×4096 f32 matrix (row-major, x fastest). ---
    let n = 4096u64;
    let shape = Shape::new([n, n]);
    let matrix: Vec<u8> = (0..n * n).flat_map(|i| (i as f32).to_le_bytes()).collect();

    let mut nds = HardwareNds::new(config.clone());
    let dataset = nds.create_dataset(shape.clone(), ElementType::F32)?;
    let write = nds.write(dataset, &shape, &[0, 0], &[n, n], &matrix)?;
    println!(
        "stored {} MiB in {} ({} extended NVMe command)",
        write.bytes / 1024 / 1024,
        write.latency,
        write.commands
    );

    // --- Consumer: fetch the [2, 3] 1024×1024 tile. One command, already
    //     in the kernel's layout.
    let tile = nds.read(dataset, &shape, &[2, 3], &[1024, 1024])?;
    println!(
        "hardware NDS tile fetch: {} commands, {:.0} MiB/s effective",
        tile.commands,
        tile.effective_bandwidth().as_mib_per_sec()
    );

    // --- The same fetch against a conventional SSD needs one request per
    //     tile row plus a host-side marshalling pass.
    let mut baseline = BaselineSystem::new(config);
    let dataset = baseline.create_dataset(shape.clone(), ElementType::F32)?;
    baseline.write(dataset, &shape, &[0, 0], &[n, n], &matrix)?;
    let tile_b = baseline.read(dataset, &shape, &[2, 3], &[1024, 1024])?;
    println!(
        "baseline tile fetch:     {} commands, {:.0} MiB/s effective ({} of CPU marshalling)",
        tile_b.commands,
        tile_b.effective_bandwidth().as_mib_per_sec(),
        tile_b.restructure
    );

    // Both return the identical bytes.
    assert_eq!(tile.data, tile_b.data);
    println!(
        "identical data; NDS was {:.1}x faster end to end",
        tile_b.latency().as_secs_f64() / tile.latency().as_secs_f64()
    );
    Ok(())
}
