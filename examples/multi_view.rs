//! The Fig. 5 scenario: a producer stores a 3-D space; consumers view the
//! same bytes through *different* dimensionalities — no copies, no
//! re-serialization, one command per request.
//!
//! The paper's example is an 8,192×8,192×4 space that one application
//! treats as four 8,192² sub-blocks of a 16,384² matrix; here we scale to
//! 2,048×2,048×4 and show three distinct consumer views of one dataset.
//!
//! ```bash
//! cargo run --release --example multi_view
//! ```

use nds::core::{ElementType, Shape};
use nds::system::{HardwareNds, StorageFrontEnd, SystemConfig, SystemError};

fn main() -> Result<(), SystemError> {
    let mut sys = HardwareNds::new(SystemConfig::paper_scale());

    // Producer: a 3-D space of 2048×2048×4 f32 (x fastest, slab index last).
    let (w, slabs) = (2048u64, 4u64);
    let producer_view = Shape::new([w, w, slabs]);
    let dataset = sys.create_dataset(producer_view.clone(), ElementType::F32)?;
    // Fill each slab s with the value s + 1.
    for s in 0..slabs {
        let slab: Vec<u8> = std::iter::repeat_n((s + 1) as f32, (w * w) as usize)
            .flat_map(f32::to_le_bytes)
            .collect();
        sys.write(dataset, &producer_view, &[0, 0, s], &[w, w, 1], &slab)?;
    }
    println!("producer stored a {} f32 space", producer_view);

    // Consumer 1: the producer's own 3-D view — one slab at a time.
    let slab = sys.read(dataset, &producer_view, &[0, 0, 2], &[w, w, 1])?;
    let first = f32::from_le_bytes(slab.data[..4].try_into().expect("4 bytes"));
    println!(
        "3-D consumer read slab 2 in {} ({} command): first element = {first}",
        slab.io_latency, slab.commands
    );
    assert_eq!(first, 3.0);

    // Consumer 2: a 2-D view of the same bytes as a (2048, 8192) matrix —
    // the four slabs stacked vertically. Same volume, different rank.
    let stacked = Shape::new([w, w * slabs]);
    let tile = sys.read(dataset, &stacked, &[1, 9], &[512, 512])?;
    let v = f32::from_le_bytes(tile.data[..4].try_into().expect("4 bytes"));
    println!(
        "2-D consumer read a 512x512 tile at row 4608 in {}: value = {v} (slab 3 territory)",
        tile.io_latency
    );
    assert_eq!(v, 3.0, "row 4608 lies in slab 2 (value 3.0)");

    // Consumer 3: a 1-D stream view — e.g. a checksum pass over the bytes.
    let flat = Shape::new([w * w * slabs]);
    let head = sys.read(dataset, &flat, &[0], &[w * w])?;
    println!(
        "1-D consumer streamed the first slab's volume in {} ({} command)",
        head.io_latency, head.commands
    );
    assert!(head
        .data
        .chunks_exact(4)
        .all(|c| { f32::from_le_bytes(c.try_into().expect("4 bytes")) == 1.0 }));

    println!("three dimensionalities, one stored dataset, zero marshalling code");
    Ok(())
}
