//! Two graph kernels, one stored dataset: BFS wants 1-D rows, Bellman-Ford
//! wants 2-D sub-blocks — NDS serves both from the same building blocks
//! (the paper pairs BFS/SSSP inputs in §6.2 to demonstrate exactly this
//! elasticity).
//!
//! ```bash
//! cargo run --release --example graph_analytics
//! ```

use nds::system::{BaselineSystem, HardwareNds, SystemConfig};
use nds::workloads::{Bfs, Sssp, Workload, WorkloadParams};

fn main() {
    // n = 2048 keeps matrix rows wider than one flash page, so tile rows
    // land on non-adjacent pages — the regime where linear layouts hurt.
    let params = WorkloadParams {
        n: 2048,
        tile: 256, // matches the 256x256 f32 building block
        iterations: 2,
        engine_scale: 32,
        seed: 7,
    };
    let mut config = SystemConfig::paper_scale();
    config.stl.block_multiplier = 1;
    // Keep the paper's overhead-to-payload ratio at this reduced scale
    // (see SystemConfig::with_scaled_command_costs).
    let config = config.with_scaled_command_costs(2);

    println!(
        "graph analytics on a {0}-node dense adjacency matrix\n",
        params.n
    );
    for workload in [
        Box::new(Bfs::new(params)) as Box<dyn Workload>,
        Box::new(Sssp::new(params)),
    ] {
        let base = workload
            .run(&mut BaselineSystem::new(config.clone()))
            .expect("baseline run");
        let hw = workload
            .run(&mut HardwareNds::new(config.clone()))
            .expect("hardware run");
        assert_eq!(base.checksum, workload.reference_checksum());
        assert_eq!(hw.checksum, base.checksum);
        println!(
            "{:<6} ({}): baseline {} → hardware NDS {} ({:.2}x), results verified",
            workload.name(),
            workload.category(),
            base.total,
            hw.total,
            base.total.as_secs_f64() / hw.total.as_secs_f64()
        );
    }
    println!(
        "\nBFS streams rows (baseline-friendly, NDS ≈ parity); \
         SSSP streams tiles (NDS wins) — same stored bytes."
    );
}
