#!/usr/bin/env bash
# CI hygiene gate: formatting, lints (warnings are errors), and the full
# workspace test suite.
#
# Usage: scripts/check.sh [--no-test]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--no-test" ]]; then
    echo "== cargo test --workspace"
    cargo test --workspace --quiet
fi

echo "check.sh: all green"
