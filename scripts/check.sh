#!/usr/bin/env bash
# CI hygiene gate: formatting, lints (warnings are errors), and the full
# workspace test suite.
#
# Usage: scripts/check.sh [--no-test]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

# Determinism/invariant rules (DESIGN.md "Determinism contract") with the
# ratcheting lint-baseline.json: fails on any new violation or unratcheted
# improvement.
echo "== nds-lint (determinism contract)"
lint_json="$(mktemp)"
cargo run --quiet -p nds-lint -- --json "$lint_json" || { rm -f "$lint_json"; exit 1; }
grep -q '"version": 2' "$lint_json" \
    || { rm -f "$lint_json"; echo "check.sh: nds-lint --json did not emit a version-2 report" >&2; exit 1; }
rm -f "$lint_json"

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--no-test" ]]; then
    echo "== cargo test --workspace"
    cargo test --workspace --quiet

    # Overflow-checked CI profile (release codegen + `overflow-checks =
    # true`): the WFQ finish-tag arithmetic and the multi-tenant QoS /
    # property suites must be wrap-free, not just lint-clean (rule D5).
    echo "== cargo test --profile ci (WFQ + tenant suites, overflow checks on)"
    cargo test --quiet --profile ci -p nds-interconnect
    cargo test --quiet --profile ci -p nds-system \
        --test wfq_qos --test tenant_isolation --test tenant_differential

    # Cross-architecture fault differential under pinned seeds: byte-identical
    # data vs the fault-free golden run, monotone modeled time, all faults
    # recovered. Seeds are fixed here so CI failures reproduce locally.
    echo "== fault differential (NDS_FAULT_SEEDS=17,424242,9000000001)"
    NDS_FAULT_SEEDS=17,424242,9000000001 \
        cargo test --quiet --release --test fault_differential

    # Report determinism: the same fully-instrumented run must serialize to
    # byte-identical RunReport JSON twice in a row.
    echo "== report determinism (fig9 a --report, twice)"
    report_dir="$(mktemp -d)"
    trap 'rm -rf "$report_dir"' EXIT
    cargo build --quiet --release -p nds-bench --bin fig9
    ./target/release/fig9 a --report "$report_dir/run1.json" > /dev/null
    ./target/release/fig9 a --report "$report_dir/run2.json" > /dev/null
    cmp "$report_dir/run1.json" "$report_dir/run2.json" \
        || { echo "check.sh: fig9 run reports differ between identical runs" >&2; exit 1; }

    # Trace determinism: the Chrome trace-event export (causal per-command
    # traces on the modeled clock) must also be byte-identical across
    # identical runs — nds-prof's attribution depends on it.
    echo "== trace determinism (fig9 a --trace, twice)"
    ./target/release/fig9 a --trace "$report_dir/trace1.json" > /dev/null
    ./target/release/fig9 a --trace "$report_dir/trace2.json" > /dev/null
    cmp "$report_dir/trace1.json" "$report_dir/trace2.json" \
        || { echo "check.sh: fig9 chrome traces differ between identical runs" >&2; exit 1; }

    # Multi-tenant determinism under a pinned seed: the 16-tenant mixed
    # open/closed run must produce byte-identical reports and traces (with
    # per-tenant Perfetto lanes) across two identical invocations.
    echo "== tenant determinism (tenants --seed 42 --report/--trace, twice)"
    cargo build --quiet --release -p nds-bench --bin tenants
    ./target/release/tenants --seed 42 \
        --report "$report_dir/tenants1.json" --trace "$report_dir/tenants1.trace.json" > /dev/null
    ./target/release/tenants --seed 42 \
        --report "$report_dir/tenants2.json" --trace "$report_dir/tenants2.trace.json" > /dev/null
    cmp "$report_dir/tenants1.json" "$report_dir/tenants2.json" \
        || { echo "check.sh: tenants run reports differ between identical runs" >&2; exit 1; }
    cmp "$report_dir/tenants1.trace.json" "$report_dir/tenants2.trace.json" \
        || { echo "check.sh: tenants chrome traces differ between identical runs" >&2; exit 1; }

    # Cluster determinism: the sharded multi-device bench replays the same
    # seeded mix healthy and with a device-kill fault plan; both runs' merged
    # reports (cluster + every device, `healthy.`/`degraded.` prefixes) and
    # the degraded run's per-device causal traces must be byte-identical
    # across two identical invocations — failover, re-replication and read
    # steering are all pure functions of (seed, plan).
    echo "== cluster determinism (cluster --seed 7 --report/--trace, twice)"
    cargo build --quiet --release -p nds-bench --bin cluster
    ./target/release/cluster --seed 7 \
        --report "$report_dir/cluster1.json" --trace "$report_dir/cluster1.trace.json" > /dev/null
    ./target/release/cluster --seed 7 \
        --report "$report_dir/cluster2.json" --trace "$report_dir/cluster2.trace.json" > /dev/null
    cmp "$report_dir/cluster1.json" "$report_dir/cluster2.json" \
        || { echo "check.sh: cluster run reports differ between identical runs" >&2; exit 1; }
    cmp "$report_dir/cluster1.trace.json" "$report_dir/cluster2.trace.json" \
        || { echo "check.sh: cluster chrome traces differ between identical runs" >&2; exit 1; }

    # Metrics determinism: the windowed-telemetry JSON and the static HTML
    # dashboard (page + data payload) must be byte-identical across two
    # identical instrumented runs — on a single-device point run and on the
    # cluster bench's device-kill fault plan (failover marks included).
    # Same file names in two directories: the dashboard HTML embeds its
    # sibling data.js *name*, so the artifacts are only comparable when
    # both runs write to identically-named outputs.
    echo "== metrics determinism (fig9 a + cluster --metrics/--dashboard, twice)"
    for i in 1 2; do
        mkdir -p "$report_dir/m$i"
        ./target/release/fig9 a \
            --metrics "$report_dir/m$i/fig9.json" --dashboard "$report_dir/m$i/fig9.html" > /dev/null
        ./target/release/cluster --seed 7 \
            --metrics "$report_dir/m$i/cluster.json" --dashboard "$report_dir/m$i/cluster.html" > /dev/null
    done
    for artifact in fig9.json fig9.html fig9.data.js cluster.json cluster.html cluster.data.js; do
        cmp "$report_dir/m1/$artifact" "$report_dir/m2/$artifact" \
            || { echo "check.sh: $artifact differs between identical runs" >&2; exit 1; }
    done
    grep -q 'failover_events' "$report_dir/m1/cluster.json" \
        || { echo "check.sh: cluster metrics JSON lost the failover series" >&2; exit 1; }
fi

echo "check.sh: all green"
