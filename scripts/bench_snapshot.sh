#!/usr/bin/env bash
# Runs the criterion `stl` and `microbench` benches and appends one
# trajectory entry to BENCH_stl.json (papyrus-style records: every value is
# median wall-clock nanoseconds, smaller is better).
#
# The entry also records `speedup`, the plan-cache win on repeated
# same-shape reads (uncached / cached median), which the acceptance bar
# requires to stay >= 1.3x.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_stl.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cargo bench -p nds-bench --bench stl --bench microbench 2>/dev/null \
    | grep '^bench: ' | tee "$raw"

RAW="$raw" OUT="$out" python3 - <<'PY'
import json, os, subprocess, time

records = []
with open(os.environ["RAW"]) as f:
    for line in f:
        # bench: <group>/<name> median_ns <N>
        _, name, _, ns = line.split()
        records.append({"name": name, "value": int(ns), "unit": "ns",
                        "direction": "smaller-is-better"})

by_name = {r["name"]: r["value"] for r in records}
speedup = {}
for cached, uncached in [("stl/read_tile_256", "stl/read_tile_256_uncached"),
                         ("stl/read_column_64", "stl/read_column_64_uncached")]:
    if cached in by_name and uncached in by_name and by_name[cached] > 0:
        speedup[cached] = round(by_name[uncached] / by_name[cached], 3)

commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                        capture_output=True, text=True).stdout.strip() or None
entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "commit": commit,
    "records": records,
    "speedup": speedup,
}

out = os.environ["OUT"]
trajectory = []
if os.path.exists(out):
    with open(out) as f:
        trajectory = json.load(f).get("trajectory", [])
trajectory.append(entry)
with open(out, "w") as f:
    json.dump({"bench": "stl", "trajectory": trajectory}, f, indent=2)
    f.write("\n")

worst = min(speedup.values()) if speedup else 0.0
print(f"wrote {out}: {len(records)} records, "
      f"repeated same-shape read speedup {speedup} (floor 1.3x)")
if worst < 1.3:
    raise SystemExit(f"FAIL: plan-cache speedup {worst} < 1.3x")
PY
