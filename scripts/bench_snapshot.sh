#!/usr/bin/env bash
# Runs the criterion `stl` and `microbench` benches and appends one
# trajectory entry to BENCH_stl.json (papyrus-style records: every value is
# median wall-clock nanoseconds, smaller is better).
#
# The entry also records `speedup`, the plan-cache win on repeated
# same-shape reads (uncached / cached median), which the acceptance bar
# requires to stay >= 1.3x, and `attribution`, the nds-prof critical-path
# time-attribution summary of a traced fig9 panel-(a) run (per system, the
# modeled nanoseconds each pipeline stage contributed to end-to-end
# latency — the stage spans partition total latency exactly).
#
# Each bench bin self-reports a `commands_per_wall_second=` line; those
# wall-clock rates land as per-bin trajectory records, and the updated
# trajectory is rendered as a static regression dashboard
# (`<output>.dashboard.html`) via `nds-prof dashboard`.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_stl.json}"
raw="$(mktemp)"
trace="$(mktemp)"
prof="$(mktemp)"
fig9_out="$(mktemp)"
tenants_out="$(mktemp)"
cluster_out="$(mktemp)"
trap 'rm -f "$raw" "$trace" "$prof" "$fig9_out" "$tenants_out" "$cluster_out"' EXIT

cargo bench -p nds-bench --bench stl --bench microbench 2>/dev/null \
    | grep '^bench: ' | tee "$raw"

echo "== fig9 time attribution (nds-prof over a traced fig9 a run)"
cargo build --quiet --release -p nds-bench -p nds-prof --bin fig9 --bin nds-prof
./target/release/fig9 a --trace "$trace" > "$fig9_out"
./target/release/nds-prof "$trace" > "$prof"

echo "== multi-tenant saturation (tenants, 16 mixed open/closed)"
cargo build --quiet --release -p nds-bench --bin tenants
./target/release/tenants --seed 42 > "$tenants_out"

echo "== cluster degraded-vs-healthy (4 devices, k=2, device-kill plan)"
cargo build --quiet --release -p nds-bench --bin cluster
./target/release/cluster --seed 7 > "$cluster_out"

RAW="$raw" PROF="$prof" FIG9="$fig9_out" TENANTS="$tenants_out" CLUSTER="$cluster_out" \
    OUT="$out" python3 - <<'PY'
import json, os, subprocess, time

def fail(msg):
    raise SystemExit(f"FAIL: {msg}")

records = []
with open(os.environ["RAW"]) as f:
    for line in f:
        # bench: <group>/<name> median_ns <N>
        _, name, _, ns = line.split()
        records.append({"name": name, "value": int(ns), "unit": "ns",
                        "direction": "smaller-is-better"})
if not records:
    fail("criterion benches emitted no 'bench:' records — harness broken?")

by_name = {r["name"]: r["value"] for r in records}
speedup = {}
for cached, uncached in [("stl/read_tile_256", "stl/read_tile_256_uncached"),
                         ("stl/read_column_64", "stl/read_column_64_uncached")]:
    if cached in by_name and uncached in by_name and by_name[cached] > 0:
        speedup[cached] = round(by_name[uncached] / by_name[cached], 3)

# nds-prof report: "## <system>" headers, then per-stage attribution lines
# of the form "  <stage> <ns> ns <pct>%".
attribution = {}
system = None
with open(os.environ["PROF"]) as f:
    for line in f:
        if line.startswith("## "):
            system = line[3:].strip()
            if system != "cross-system comparison":
                attribution[system] = {}
            else:
                system = None
        elif system and line.startswith("  ") and line.rstrip().endswith("%"):
            parts = line.split()
            if len(parts) == 4 and parts[2] == "ns":
                attribution[system][parts[0]] = int(parts[1])

# tenants bench summary line:
#   "makespan <N> ns, <N> bytes moved, <F> MiB/s aggregate, tenant jain <F>"
multi_tenant = {}
with open(os.environ["TENANTS"]) as f:
    for line in f:
        if line.startswith("makespan ") and "tenant jain" in line:
            parts = line.split()
            multi_tenant = {
                "makespan_ns": int(parts[1]),
                "bytes": int(parts[3]),
                "throughput_mib_s": float(parts[6]),
                "jain": float(parts[-1]),
            }

# cluster bench summary lines:
#   "healthy: ops=<N> bytes=<N> io_ns=<N> mib_s=<F>"
#   "degraded: ops=<N> bytes=<N> io_ns=<N> mib_s=<F> rereplicated_bytes=<N>"
cluster = {}
with open(os.environ["CLUSTER"]) as f:
    for line in f:
        for run in ("healthy", "degraded"):
            if line.startswith(f"{run}: "):
                fields = dict(p.split("=", 1) for p in line.split()[1:])
                cluster[run] = {
                    "ops": int(fields["ops"]),
                    "bytes": int(fields["bytes"]),
                    "io_ns": int(fields["io_ns"]),
                    "throughput_mib_s": float(fields["mib_s"]),
                }
                if "rereplicated_bytes" in fields:
                    cluster[run]["rereplicated_bytes"] = int(fields["rereplicated_bytes"])
if set(cluster) != {"healthy", "degraded"}:
    fail(f"cluster bench summary incomplete: found {sorted(cluster)}")
if cluster["degraded"]["bytes"] != cluster["healthy"]["bytes"]:
    fail("cluster degraded run moved different app bytes than healthy — "
         "the fault plan changed the acknowledged-write set")

# Wall-clock command rates self-reported by each bench bin on its
# parseable "commands_per_wall_second=<rate> commands=<n>" summary line:
# coarse end-to-end simulator-throughput series, larger is better.
for bin_name, env in [("fig9", "FIG9"), ("tenants", "TENANTS"),
                      ("cluster", "CLUSTER")]:
    with open(os.environ[env]) as f:
        for line in f:
            if line.startswith("commands_per_wall_second="):
                fields = dict(p.split("=", 1) for p in line.split())
                records.append({
                    "name": f"{bin_name}/commands_per_wall_second",
                    "value": int(fields["commands_per_wall_second"]),
                    "unit": "ops/s", "direction": "larger-is-better"})
                break
        else:
            fail(f"{bin_name} bench lost its commands_per_wall_second line")

def validate_trajectory(trajectory):
    if not isinstance(trajectory, list) or not trajectory:
        fail("trajectory must be a non-empty list")
    for i, e in enumerate(trajectory):
        if not isinstance(e, dict):
            fail(f"trajectory[{i}] is not an object")
        recs = e.get("records")
        if not isinstance(recs, list) or not recs:
            fail(f"trajectory[{i}].records missing or empty")
        for r in recs:
            if not (isinstance(r, dict)
                    and isinstance(r.get("name"), str)
                    and isinstance(r.get("value"), int)
                    and isinstance(r.get("unit"), str)
                    and r.get("direction") in ("smaller-is-better",
                                               "larger-is-better")):
                fail(f"trajectory[{i}] has a malformed record: {r!r}")

commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                        capture_output=True, text=True).stdout.strip() or None
entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "commit": commit,
    "records": records,
    "speedup": speedup,
    "attribution": attribution,
    "multi_tenant": multi_tenant,
    "cluster": cluster,
}

out = os.environ["OUT"]
trajectory = []
if os.path.exists(out):
    # Fail loudly on a malformed history rather than silently replacing it.
    try:
        with open(out) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        fail(f"{out} is not valid JSON ({e}); refusing to clobber it")
    if not isinstance(doc, dict) or doc.get("bench") != "stl":
        fail(f"{out} is not a BENCH_stl document (bench={doc.get('bench')!r})")
    trajectory = doc.get("trajectory", [])
    validate_trajectory(trajectory)
trajectory.append(entry)
validate_trajectory(trajectory)
with open(out, "w") as f:
    json.dump({"bench": "stl", "trajectory": trajectory}, f, indent=2)
    f.write("\n")

worst = min(speedup.values()) if speedup else 0.0
print(f"wrote {out}: {len(records)} records, "
      f"repeated same-shape read speedup {speedup} (floor 1.3x)")
for system, stages in attribution.items():
    total = sum(stages.values())
    shares = ", ".join(f"{k} {v * 100 // total}%" for k, v in stages.items())
    print(f"  attribution {system}: {shares}")
if multi_tenant:
    print(f"  multi-tenant: {multi_tenant['throughput_mib_s']} MiB/s aggregate, "
          f"jain {multi_tenant['jain']}")
print(f"  cluster: healthy {cluster['healthy']['throughput_mib_s']} MiB/s vs "
      f"degraded {cluster['degraded']['throughput_mib_s']} MiB/s "
      f"({cluster['degraded'].get('rereplicated_bytes', 0)} bytes re-replicated)")
if worst < 1.3:
    raise SystemExit(f"FAIL: plan-cache speedup {worst} < 1.3x")
if multi_tenant and multi_tenant["jain"] < 0.9:
    raise SystemExit(f"FAIL: multi-tenant jain {multi_tenant['jain']} < 0.9")
PY

# Per-commit regression dashboard: render the updated trajectory (every
# record series, including the commands_per_wall_second trend) as a static
# HTML page next to the JSON.
dashboard="${out%.json}.dashboard.html"
./target/release/nds-prof dashboard "$out" "$dashboard"
echo "trajectory dashboard written to $dashboard"
