#!/usr/bin/env bash
# Fault-injection sweep: runs the deterministic fault harness across rising
# rates on all four architectures and prints the recovery counters
# (injected/recovered, retries, blocks retired, migrations) plus the modeled
# time each rate adds over the fault-free run.
#
# Usage: scripts/fault_sweep.sh [seed ...]   (default seeds: 11 1221 987654321)
set -euo pipefail

cd "$(dirname "$0")/.."

seeds=("$@")
if [[ ${#seeds[@]} -eq 0 ]]; then
    seeds=(11 1221 987654321)
fi

for seed in "${seeds[@]}"; do
    cargo run --release -q -p nds-bench --bin fault_sweep -- "$seed"
    echo
done
