#!/usr/bin/env bash
# Runs the workspace determinism/invariant linter (DESIGN.md "Determinism
# contract") against the ratcheting lint-baseline.json.
#
# Usage: scripts/lint.sh [--update-baseline | --list | --summary]
#
#   (no args)          check the tree against the baseline (what CI runs)
#   --update-baseline  rewrite lint-baseline.json to match the current tree
#                      (ratchets improvements in, removes stale entries)
#   --list             print every violation, baselined or not
#   --summary          print per-rule totals
set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run --quiet -p nds-lint -- "$@"
